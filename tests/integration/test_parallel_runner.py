"""Determinism of the parallel repetition engine and the RNG plumbing.

The contract under test: ``run_scenario(..., workers=N)`` produces
*bit-for-bit* the same series as the serial run for the same seed, which
in turn requires the random-stream factory to derive identical streams
in any process (stable label hashing).
"""

from __future__ import annotations

import os
import subprocess
import sys


from repro.experiments import run_figure, run_scenario
from repro.generators import ScenarioConfig
from repro.generators.scenarios import clear_instance_cache, sample_instance
from repro.simulation.rng import RandomStreamFactory


def _small_scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="parallel-test",
        num_machines=5,
        num_types=2,
        sweep="tasks",
        sweep_values=(6, 9),
        repetitions=4,
        heuristics=("H1", "H2", "H4w"),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _series_payload(result):
    return {
        label: (series.x_values, series.samples)
        for label, series in result.series.items()
    }


class TestParallelDeterminism:
    def test_parallel_scenario_is_bit_for_bit_identical_to_serial(self):
        scenario = _small_scenario()
        serial = run_scenario(scenario, seed=123)
        parallel = run_scenario(scenario, seed=123, workers=2)
        assert _series_payload(serial) == _series_payload(parallel)

    def test_parallel_run_figure_matches_serial(self):
        serial = run_figure(
            "fig6", seed=9, repetitions=2, max_points=2, include_milp=False
        )
        parallel = run_figure(
            "fig6", seed=9, repetitions=2, max_points=2, include_milp=False, workers=2
        )
        assert _series_payload(serial) == _series_payload(parallel)

    def test_workers_one_takes_the_serial_path(self):
        scenario = _small_scenario(repetitions=2)
        assert _series_payload(run_scenario(scenario, seed=7)) == _series_payload(
            run_scenario(scenario, seed=7, workers=1)
        )

    def test_randomized_heuristic_is_reproducible_across_modes(self):
        # H1 consumes an RNG stream per repetition; identical streams in
        # the workers are what keep its series reproducible.
        scenario = _small_scenario(heuristics=("H1",), repetitions=6)
        a = run_scenario(scenario, seed=31, workers=3)
        b = run_scenario(scenario, seed=31)
        assert _series_payload(a) == _series_payload(b)


class TestStableStreams:
    def test_stream_labels_hash_identically_in_a_fresh_interpreter(self):
        """Guards against PYTHONHASHSEED-dependent stream derivation."""
        code = (
            "from repro.simulation.rng import RandomStreamFactory;"
            "print(RandomStreamFactory(99).stream('fig5/n10', 3).random())"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        outputs = set()
        for hash_seed in ("1", "2"):
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.add(proc.stdout.strip())
        assert len(outputs) == 1
        assert outputs == {str(RandomStreamFactory(99).stream("fig5/n10", 3).random())}

    def test_entropy_reconstructs_identical_factory(self):
        import numpy as np

        factory = RandomStreamFactory(None)
        clone = RandomStreamFactory(np.random.SeedSequence(factory.entropy))
        assert factory.stream("x", 5).random() == clone.stream("x", 5).random()


class TestMemoizedSampling:
    def test_memoized_instance_is_cached_and_identical(self):
        clear_instance_cache()
        scenario = _small_scenario()
        streams = RandomStreamFactory(4)
        first = sample_instance(scenario, 6, 0, streams, memoize=True)
        second = sample_instance(scenario, 6, 0, streams, memoize=True)
        assert first is second
        fresh = sample_instance(scenario, 6, 0, RandomStreamFactory(4))
        assert (fresh.processing_times == first.processing_times).all()
        assert (fresh.failure_rates == first.failure_rates).all()

    def test_memoization_distinguishes_seeds_and_cells(self):
        clear_instance_cache()
        scenario = _small_scenario()
        a = sample_instance(scenario, 6, 0, RandomStreamFactory(4), memoize=True)
        b = sample_instance(scenario, 6, 1, RandomStreamFactory(4), memoize=True)
        c = sample_instance(scenario, 6, 0, RandomStreamFactory(5), memoize=True)
        assert a is not b
        assert a is not c
        assert not (a.failure_rates == b.failure_rates).all()
