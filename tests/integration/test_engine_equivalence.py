"""Block-scheduled engine vs the PR 1 per-cell reference path.

The contract under test: for the same seed, ``run_scenario`` /
``run_figure`` produce bit-for-bit identical series whether whole
repetition blocks are scheduled through the curve providers and the
vectorized :class:`~repro.batch.InstanceStack` pass (``engine="block"``,
the default) or every (sweep point, repetition) cell is scored through
the scalar path (``engine="cells"``, PR 1's engine kept as reference) —
serially or on a process pool.  A second battery checks that a result
store makes runs resumable without recomputing stored blocks.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments import ResultStore, run_figure, run_scenario
from repro.experiments import providers as providers_module
from repro.experiments.figures import FIGURES
from repro.experiments.providers import CellBlock, HeuristicProvider
from repro.generators import ScenarioConfig
from repro.heuristics import get_heuristic, supports_batch
from repro.heuristics.base import batch_solve_min_repetitions
from repro.simulation.rng import RandomStreamFactory


def _series_payload(result):
    return {
        label: (series.x_values, series.samples)
        for label, series in result.series.items()
    }


def _assert_identical(a, b):
    """Bit-for-bit series equality, treating NaN cells (MIP timeouts /
    OtO infeasibility) as equal when they coincide."""
    pa, pb = _series_payload(a), _series_payload(b)
    assert pa.keys() == pb.keys()
    for label in pa:
        xa, sa = pa[label]
        xb, sb = pb[label]
        assert xa == xb, label
        for x in xa:
            va, vb = sa[x], sb[x]
            assert len(va) == len(vb), (label, x)
            for left, right in zip(va, vb):
                if math.isnan(left) and math.isnan(right):
                    continue
                assert left == right, (label, x)


def _small_scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="engine-test",
        num_machines=5,
        num_types=2,
        sweep="tasks",
        sweep_values=(6, 9),
        repetitions=4,
        heuristics=("H1", "H2", "H4w"),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestBlockVsCells:
    def test_custom_scenario_identical(self):
        scenario = _small_scenario()
        _assert_identical(
            run_scenario(scenario, seed=11, engine="cells"),
            run_scenario(scenario, seed=11, engine="block"),
        )

    def test_custom_scenario_with_exact_baselines(self):
        scenario = _small_scenario(
            num_machines=8,
            sweep_values=(4,),
            repetitions=2,
            heuristics=("H2", "H4w"),
            task_dependent_failures=True,
        )
        cells = run_scenario(
            scenario, seed=3, engine="cells", include_milp=True, include_one_to_one=True
        )
        block = run_scenario(
            scenario, seed=3, engine="block", include_milp=True, include_one_to_one=True
        )
        _assert_identical(cells, block)
        assert cells.milp_failures == block.milp_failures

    def test_fig9_reduced_identical(self):
        _assert_identical(
            run_figure("fig9", seed=5, repetitions=2, max_points=2, engine="cells"),
            run_figure("fig9", seed=5, repetitions=2, max_points=2, engine="block"),
        )

    def test_fig10_reduced_identical(self):
        # MILP-free in tier 1 (the n=16 solves take ~10s each); the slow
        # suite covers the full curve set below, and
        # test_custom_scenario_with_exact_baselines keeps a cheap
        # MILP-inclusive equivalence check in tier 1.
        _assert_identical(
            run_figure(
                "fig10", seed=1, repetitions=2, max_points=2, engine="cells",
                include_milp=False,
            ),
            run_figure(
                "fig10", seed=1, repetitions=2, max_points=2, engine="block",
                include_milp=False,
            ),
        )

    @pytest.mark.slow
    def test_fig10_reduced_identical_including_milp(self):
        _assert_identical(
            run_figure(
                "fig10", seed=1, repetitions=2, max_points=2, engine="cells"
            ),
            run_figure(
                "fig10", seed=1, repetitions=2, max_points=2, engine="block"
            ),
        )

    @pytest.mark.slow
    def test_fig5_reduced_identical(self):
        _assert_identical(
            run_figure("fig5", seed=7, repetitions=2, max_points=2, engine="cells"),
            run_figure("fig5", seed=7, repetitions=2, max_points=2, engine="block"),
        )

    def test_parallel_block_matches_serial_block(self):
        scenario = _small_scenario()
        _assert_identical(
            run_scenario(scenario, seed=11, engine="block"),
            run_scenario(scenario, seed=11, engine="block", workers=2),
        )

    def test_parallel_block_matches_parallel_cells(self):
        scenario = _small_scenario(repetitions=3)
        _assert_identical(
            run_scenario(scenario, seed=23, engine="cells", workers=2),
            run_scenario(scenario, seed=23, engine="block", workers=2),
        )

    def test_memoized_block_run_is_identical(self):
        scenario = _small_scenario(repetitions=2)
        _assert_identical(
            run_scenario(scenario, seed=9, engine="block"),
            run_scenario(scenario, seed=9, engine="block", memoize_instances=True),
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError):
            run_scenario(_small_scenario(), engine="warp")

    def test_cells_engine_rejects_block_only_features(self, tmp_path):
        scenario = _small_scenario()
        with pytest.raises(ExperimentError):
            run_scenario(scenario, engine="cells", extra_curves=("H4ls",))
        with pytest.raises(ExperimentError):
            run_scenario(
                scenario, engine="cells", store=ResultStore(tmp_path / "s")
            )


class TestBatchSolveEquivalence:
    """The batch solve layer vs the per-instance loop on real figure shapes.

    For every batch-capable heuristic of a figure's curve set, the forced
    ``solve_batch`` path must produce the per-instance path's assignments
    bit for bit on a block sampled from that figure's scenario.
    """

    @pytest.mark.parametrize("figure_id", ["fig5", "fig9", "fig10"])
    def test_block_solve_identical_to_per_instance(self, figure_id):
        scenario = FIGURES[figure_id].scenario.scaled(repetitions=3)
        sweep_value = scenario.sweep_values[0]
        block = CellBlock.sample(scenario, sweep_value, RandomStreamFactory(21))
        covered = 0
        for name in scenario.heuristics:
            if not supports_batch(get_heuristic(name)):
                continue  # H1: randomized, stays on the per-instance path
            batched = HeuristicProvider(name, batch=True).solve_block(block)
            looped = HeuristicProvider(name, batch=False).solve_block(block)
            assert (batched == looped).all(), (figure_id, name)
            covered += 1
        assert covered >= 3  # H2/H3 and at least one H4-family curve

    def test_engine_uses_batch_solve_above_threshold(self, monkeypatch):
        """A block-engine run at production depth routes through solve_batch
        and still matches the per-cell reference engine bit for bit."""
        calls = []
        scenario = _small_scenario(
            repetitions=max(
                batch_solve_min_repetitions("H2"),
                batch_solve_min_repetitions("H4w"),
            ),
            heuristics=("H2", "H4w"),
        )
        for name in scenario.heuristics:
            cls = type(get_heuristic(name))
            original = cls.solve_batch

            def counting(self, instances, _original=original):
                calls.append(type(self).name)
                return _original(self, instances)

            monkeypatch.setattr(cls, "solve_batch", counting)
        block = run_scenario(scenario, seed=29, engine="block")
        assert sorted(set(calls)) == ["H2", "H4w"]
        cells = run_scenario(scenario, seed=29, engine="cells")
        _assert_identical(cells, block)


class TestCrossPointStacking:
    """Signature-aligned sweep points stacked into one kernel pass.

    A types sweep keeps (n, m) fixed across points, so the serial block
    engine chunks the whole figure into one solve per curve; results
    must stay bit-for-bit identical to the per-cell reference, and the
    lock-step kernel must actually be entered once with every point's
    rows."""

    def _types_scenario(self, **overrides) -> ScenarioConfig:
        defaults = dict(
            name="cross-point-test",
            num_machines=12,
            num_types=None,
            num_tasks=12,
            sweep="types",
            sweep_values=(3, 4, 5, 6),
            repetitions=6,
            heuristics=("H2", "H4w", "H4ls", "H1"),
        )
        defaults.update(overrides)
        return ScenarioConfig(**defaults)

    def test_types_sweep_identical_to_cells(self):
        scenario = self._types_scenario()
        _assert_identical(
            run_scenario(scenario, seed=7, engine="cells"),
            run_scenario(scenario, seed=7, engine="block"),
        )

    def test_aligned_points_solve_in_one_batch_call(self, monkeypatch):
        calls = []
        scenario = self._types_scenario(heuristics=("H2", "H4w"))
        for name in scenario.heuristics:
            cls = type(get_heuristic(name))
            original = cls.solve_batch

            def counting(self, instances, _original=original):
                calls.append((type(self).name, len(instances)))
                return _original(self, instances)

            monkeypatch.setattr(cls, "solve_batch", counting)
        run_scenario(scenario, seed=7, engine="block")
        rows = len(scenario.sweep_values) * scenario.repetitions
        assert sorted(calls) == [("H2", rows), ("H4w", rows)]

    def test_provider_stacking_matches_per_block(self):
        scenario = self._types_scenario(heuristics=("H2",))
        streams = RandomStreamFactory(19)
        blocks = [
            CellBlock.sample(scenario, value, streams)
            for value in scenario.sweep_values
        ]
        for name in ("H2", "H4w", "H4ls"):
            provider = providers_module.resolve_provider(name)
            stacked = provider.evaluate_blocks(blocks)
            per_block = [provider.evaluate_block(block) for block in blocks]
            for one, many in zip(per_block, stacked):
                assert (one.periods == many.periods).all(), name

    def test_misaligned_points_fall_back_per_block(self):
        # A tasks sweep changes n between points: nothing may stack.
        scenario = _small_scenario(heuristics=("H4w",), repetitions=6)
        streams = RandomStreamFactory(19)
        blocks = [
            CellBlock.sample(scenario, value, streams)
            for value in scenario.sweep_values
        ]
        chunks = providers_module._aligned_chunks(blocks)
        assert [len(chunk) for chunk in chunks] == [1, 1]
        provider = HeuristicProvider("H4w")
        stacked = provider.evaluate_blocks(blocks)
        for block, result in zip(blocks, stacked):
            reference = provider.evaluate_block(block)
            assert (result.periods == reference.periods).all()

    def test_row_cap_splits_chunks(self):
        scenario = self._types_scenario(heuristics=("H4w",), repetitions=4)
        streams = RandomStreamFactory(19)
        blocks = [
            CellBlock.sample(scenario, value, streams)
            for value in scenario.sweep_values
        ]
        chunks = providers_module._aligned_chunks(blocks, max_rows=8)
        assert [len(chunk) for chunk in chunks] == [2, 2]
        # An oversized single block still forms its own chunk.
        chunks = providers_module._aligned_chunks(blocks, max_rows=2)
        assert [len(chunk) for chunk in chunks] == [1, 1, 1, 1]


class TestBatchFallback:
    """Providers whose heuristic lacks ``solve_batch`` must keep working
    under the block engine — serially and on a process pool."""

    def test_h1_has_no_batch_kernel(self):
        assert not supports_batch(get_heuristic("H1"))

    def test_fallback_block_run_matches_cells_with_workers(self):
        scenario = _small_scenario(
            repetitions=batch_solve_min_repetitions("H4w"),
            heuristics=("H1", "RoundRobin", "H4w"),
        )
        cells = run_scenario(scenario, seed=31, engine="cells")
        block = run_scenario(scenario, seed=31, engine="block", workers=2)
        _assert_identical(cells, block)

    def test_fallback_provider_solves_blocks_directly(self):
        scenario = _small_scenario(repetitions=4, heuristics=("H1",))
        block = CellBlock.sample(
            scenario, scenario.sweep_values[0], RandomStreamFactory(8)
        )
        result = HeuristicProvider("H1").evaluate_block(block)
        assert result.periods.shape == (4,)
        assert np.isfinite(result.periods).all()


class TestOptionalCurves:
    def test_fig6_optional_h4ls_never_above_h4w(self):
        result = run_figure(
            "fig6", seed=0, repetitions=2, max_points=2, include_optional=True
        )
        assert "H4ls" in result.series
        for x in result.series["H4ls"].x_values:
            for refined, seeded in zip(
                result.series["H4ls"].samples[x], result.series["H4w"].samples[x]
            ):
                assert refined <= seeded

    def test_optional_curves_do_not_perturb_paper_curves(self):
        plain = run_figure("fig6", seed=0, repetitions=1, max_points=2)
        extended = run_figure(
            "fig6", seed=0, repetitions=1, max_points=2, include_optional=True
        )
        for label in plain.series:
            assert (
                plain.series[label].samples == extended.series[label].samples
            )


class TestStoreResume:
    def test_resume_skips_stored_blocks(self, tmp_path, monkeypatch):
        scenario = _small_scenario(repetitions=2)
        with ResultStore(tmp_path / "s") as store:
            first = run_scenario(scenario, seed=4, figure_id="figE", store=store)

        sampled = []
        original = providers_module.CellBlock.sample.__func__

        def counting(cls, *args, **kwargs):
            sampled.append(args[1])
            return original(cls, *args, **kwargs)

        monkeypatch.setattr(
            providers_module.CellBlock, "sample", classmethod(counting)
        )
        with ResultStore(tmp_path / "s") as store:
            second = run_scenario(
                scenario, seed=4, figure_id="figE", store=store, resume=True
            )
        assert sampled == []  # nothing recomputed
        _assert_identical(first, second)

    def test_resume_only_computes_missing_blocks(self, tmp_path):
        scenario = _small_scenario(repetitions=2)
        full = run_scenario(scenario, seed=4, figure_id="figE")
        with ResultStore(tmp_path / "s") as store:
            run_scenario(scenario, seed=4, figure_id="figE", store=store)
            # Drop one stored block from the index: only that block reruns.
            key = next(k for k in store._cells if "|H2|9" in k)
            del store._cells[key]
            resumed = run_scenario(
                scenario, seed=4, figure_id="figE", store=store, resume=True
            )
        _assert_identical(full, resumed)

    def test_resume_with_different_seed_recomputes(self, tmp_path):
        scenario = _small_scenario(repetitions=2, heuristics=("H4w",))
        with ResultStore(tmp_path / "s") as store:
            run_scenario(scenario, seed=4, figure_id="figE", store=store)
            other = run_scenario(
                scenario, seed=5, figure_id="figE", store=store, resume=True
            )
        fresh = run_scenario(scenario, seed=5, figure_id="figE")
        _assert_identical(other, fresh)

    def test_stored_blocks_serve_smaller_repetition_counts(self, tmp_path):
        big = _small_scenario(repetitions=4, heuristics=("H4w",))
        small = _small_scenario(repetitions=2, heuristics=("H4w",))
        with ResultStore(tmp_path / "s") as store:
            run_scenario(big, seed=4, figure_id="figE", store=store)
            resumed = run_scenario(
                small, seed=4, figure_id="figE", store=store, resume=True
            )
        fresh = run_scenario(small, seed=4, figure_id="figE")
        _assert_identical(resumed, fresh)

    def test_parallel_run_with_store_matches_serial(self, tmp_path):
        scenario = _small_scenario(repetitions=3)
        with ResultStore(tmp_path / "s") as store:
            parallel = run_scenario(
                scenario, seed=13, figure_id="figP", store=store, workers=2
            )
        serial = run_scenario(scenario, seed=13, figure_id="figP")
        _assert_identical(parallel, serial)
        with ResultStore(tmp_path / "s") as store:
            assert store.load_result("figP").seed == 13

    def test_store_requires_seed(self, tmp_path):
        with pytest.raises(ExperimentError):
            run_scenario(
                _small_scenario(), seed=None, store=ResultStore(tmp_path / "s")
            )
