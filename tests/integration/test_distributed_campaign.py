"""Integration: a sharded fig5 campaign merges back bit-for-bit.

The acceptance test of the distributed subsystem: plan a multi-seed
fig5 campaign into two shards, execute each shard into its own store,
merge the shard stores, and compare against a single-host run of the
same manifest — every exported cell must be *bit-for-bit* identical
(the engine's results are pure functions of ``(scenario, seed, curve,
sweep value)`` through CRC-hashed random streams, so how the work was
partitioned must not be observable in the data).
"""

from __future__ import annotations

import math

import pytest

from repro.campaign import CampaignManifest, merge_stores, plan, run_shard
from repro.exceptions import ExperimentError
from repro.experiments import (
    ResultStore,
    aggregate_results,
    aggregate_seeds,
    run_figure,
)

SEEDS = (0, 1)


@pytest.fixture(scope="module")
def manifest() -> CampaignManifest:
    """A scaled-down fig5 multi-seed campaign (no exact baselines)."""
    return CampaignManifest(
        figures=("fig5",), seeds=SEEDS, repetitions=4, max_points=2
    )


@pytest.fixture(scope="module")
def single_store(manifest, tmp_path_factory) -> ResultStore:
    """The single-host reference: every (figure, seed) run into one store."""
    store = ResultStore(tmp_path_factory.mktemp("single"))
    for figure_id in manifest.figures:
        for seed in manifest.seeds:
            run_figure(
                figure_id,
                seed=seed,
                repetitions=manifest.repetitions,
                max_points=manifest.max_points,
                store=store,
            )
    store.close()
    return store


@pytest.fixture(scope="module", params=["seed", "block"])
def merged_store(request, manifest, tmp_path_factory) -> ResultStore:
    """Two shards planned along one axis, run separately, merged back."""
    shards = plan(manifest, shards=2, by=request.param)
    assert all(shard.units for shard in shards)
    shard_dirs = []
    for shard in shards:
        shard_dir = tmp_path_factory.mktemp(f"shard{shard.index}-{request.param}")
        with ResultStore(shard_dir) as store:
            report = run_shard(shard, store)
            assert report.computed == len(shard.units)
        shard_dirs.append(shard_dir)
    merged_dir = tmp_path_factory.mktemp(f"merged-{request.param}")
    merge_stores(merged_dir, shard_dirs)
    return ResultStore(merged_dir)


def _cell_map(store: ResultStore) -> dict:
    return {record.key: (record.repetitions, record.values, record.failures)
            for record in store.cells()}


class TestShardedEqualsSingleHost:
    def test_merged_cells_are_bit_for_bit_identical(self, merged_store, single_store):
        merged = _cell_map(merged_store)
        single = _cell_map(single_store)
        assert merged.keys() == single.keys()
        assert merged == single  # exact float equality, no tolerance

    def test_exported_results_match_per_seed(self, merged_store, single_store):
        for seed in SEEDS:
            merged = merged_store.load_result("fig5", seed=seed)
            single = single_store.load_result("fig5", seed=seed)
            assert merged.to_csv() == single.to_csv()
            assert {
                label: series.samples for label, series in merged.series.items()
            } == {label: series.samples for label, series in single.series.items()}

    def test_aggregated_export_matches(self, merged_store, single_store):
        merged, merged_seeds = aggregate_seeds(merged_store, "fig5")
        single, single_seeds = aggregate_seeds(single_store, "fig5")
        assert merged_seeds == single_seeds == sorted(SEEDS)
        assert merged.to_csv() == single.to_csv()

    def test_remerging_a_shard_is_idempotent(self, merged_store, single_store):
        before = _cell_map(merged_store)
        report = merged_store.merge(single_store)
        assert report.cells_added == 0
        assert report.cells_skipped == len(before)
        assert _cell_map(merged_store) == before


class TestCrossSeedAggregation:
    def test_pooled_samples_are_the_union_of_seeds(self, single_store, manifest):
        results = [
            single_store.load_result("fig5", seed=seed) for seed in sorted(SEEDS)
        ]
        pooled = aggregate_results(results)
        assert pooled.seed is None
        for label, series in pooled.series.items():
            for x in series.x_values:
                expected = [
                    value
                    for result in results
                    for value in result.series[label].samples[x]
                ]
                assert series.samples[x] == expected
                assert len(series.samples[x]) == manifest.repetitions * len(SEEDS)

    def test_pooling_is_order_independent(self, single_store):
        ascending = [single_store.load_result("fig5", seed=s) for s in (0, 1)]
        descending = list(reversed(ascending))
        assert (
            aggregate_results(ascending).to_csv()
            == aggregate_results(descending).to_csv()
        )

    def test_mean_and_ci_cover_all_seeds(self, single_store):
        pooled, _ = aggregate_seeds(single_store, "fig5")
        point = next(iter(pooled.series.values())).point(
            pooled.scenario.sweep_values[0]
        )
        assert point.count == 4 * len(SEEDS)
        assert math.isfinite(point.mean)
        assert point.ci_low <= point.mean <= point.ci_high

    def test_mismatched_runs_are_rejected(self, single_store):
        result = single_store.load_result("fig5", seed=0)
        with pytest.raises(ExperimentError):
            aggregate_results([result, result])  # duplicate seed
        with pytest.raises(ExperimentError):
            aggregate_results([])
