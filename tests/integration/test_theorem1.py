"""Integration tests for the complexity results of Section 5.

Theorem 1 (one-to-one, linear chain, homogeneous machines is polynomial)
is validated by checking the Hungarian-based solver against exhaustive
search, and the structural claims used in its proof are checked on random
instances.  The 3-PARTITION reduction of Theorem 2 is exercised by building
the instance family used in the proof and verifying the correspondence
between partitions and mapping periods.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FailureModel,
    Mapping,
    Platform,
    ProblemInstance,
    evaluate,
    linear_chain,
)
from repro.exact import bruteforce_optimal, optimal_one_to_one_homogeneous
from tests.helpers import make_random_instance


class TestTheorem1:
    @pytest.mark.parametrize("seed", range(6))
    def test_hungarian_equals_bruteforce_on_random_homogeneous_chains(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 5, 6
        app = linear_chain(n, num_types=n)
        inst = ProblemInstance(
            app,
            Platform.homogeneous(n, m, float(rng.integers(50, 500))),
            FailureModel(rng.uniform(0.0, 0.4, size=(n, m))),
        )
        exact = optimal_one_to_one_homogeneous(inst)
        brute = bruteforce_optimal(inst, "one-to-one")
        assert exact.period == pytest.approx(brute.period, rel=1e-9)

    def test_first_task_is_the_bottleneck(self):
        # In the proof, x_1 = max_i x_i, so the machine of T1 is critical.
        rng = np.random.default_rng(3)
        n, m = 6, 8
        app = linear_chain(n, num_types=n)
        inst = ProblemInstance(
            app,
            Platform.homogeneous(n, m, 100.0),
            FailureModel(rng.uniform(0.01, 0.3, size=(n, m))),
        )
        result = optimal_one_to_one_homogeneous(inst)
        evaluation = evaluate(inst, result.mapping)
        machine_of_first_task = result.mapping[0]
        assert machine_of_first_task in evaluation.critical_machines

    def test_minimising_log_sum_equals_minimising_period(self):
        # The Hungarian cost is sum(-log(1-f)); check that the produced
        # mapping indeed minimises the product of F factors among a sample
        # of random one-to-one mappings.
        rng = np.random.default_rng(4)
        n, m = 5, 7
        app = linear_chain(n, num_types=n)
        f = rng.uniform(0.0, 0.4, size=(n, m))
        inst = ProblemInstance(app, Platform.homogeneous(n, m, 100.0), FailureModel(f))
        optimal = optimal_one_to_one_homogeneous(inst)
        opt_product = np.prod(
            [1.0 / (1.0 - f[i, optimal.mapping[i]]) for i in range(n)]
        )
        for _ in range(50):
            columns = rng.permutation(m)[:n]
            random_product = np.prod([1.0 / (1.0 - f[i, columns[i]]) for i in range(n)])
            assert opt_product <= random_product + 1e-9


class TestTheorem2Construction:
    """Exercise the 3-PARTITION gadget used in the NP-hardness proof."""

    def _build_gadget(self, triplets: list[list[int]], Z: int):
        """Build the Theorem-2 instance for a YES 3-PARTITION instance.

        ``triplets`` is a partition of the integers into groups of three
        summing to ``Z`` each; machine u (one per integer) has failure rate
        ``(2^z - 1) / 2^z``; one extra reliable machine hosts the shared
        final task.
        """
        integers = [z for group in triplets for z in group]
        chains = len(triplets)
        # Application: `chains` branches of 3 tasks joining into T_final.
        from repro.core import in_tree

        app = in_tree([3] * chains, num_types=1, shared_tail_length=1)
        n = app.num_tasks
        m = len(integers) + 1
        f = np.zeros((n, m))
        for u, z in enumerate(integers):
            f[:, u] = (2.0**z - 1.0) / (2.0**z)
        # Last machine is perfectly reliable.
        f[:, m - 1] = 0.0
        platform = Platform.homogeneous(n, m, 1.0)
        inst = ProblemInstance(app, platform, FailureModel(f))
        return app, inst, integers

    def test_partition_solution_reaches_period_2_pow_z(self):
        triplets = [[1, 2, 3], [2, 2, 2]]  # each sums to Z = 6
        Z = 6
        app, inst, integers = self._build_gadget(triplets, Z)
        # Build the mapping of the proof: branch i's three tasks go to the
        # machines of triplet i, the shared final task to the reliable machine.
        assignment = np.empty(inst.num_tasks, dtype=np.int64)
        machine_index = 0
        task_index = 0
        for group in triplets:
            for _ in group:
                assignment[task_index] = machine_index
                task_index += 1
                machine_index += 1
        assignment[task_index] = inst.num_machines - 1  # final task, reliable machine
        mapping = Mapping(assignment, inst.num_machines)
        result = evaluate(inst, mapping)
        # Every branch head has x = prod 2^z = 2^Z and w = 1.
        assert result.period == pytest.approx(2.0**Z, rel=1e-9)

    def test_unbalanced_partition_is_strictly_worse(self):
        triplets = [[1, 2, 3], [2, 2, 2]]
        Z = 6
        app, inst, integers = self._build_gadget(triplets, Z)
        # Swap two integers across the groups to unbalance them (sums 5 and 7).
        unbalanced = [[1, 2, 2], [3, 2, 2]]
        assignment = np.empty(inst.num_tasks, dtype=np.int64)
        # Assign greedily: group g's tasks to machines holding its integers.
        used = set()
        task_index = 0
        for group in unbalanced:
            for z in group:
                candidates = [
                    u for u, zz in enumerate(integers) if zz == z and u not in used
                ]
                machine = candidates[0]
                used.add(machine)
                assignment[task_index] = machine
                task_index += 1
        assignment[task_index] = inst.num_machines - 1
        result = evaluate(inst, Mapping(assignment, inst.num_machines))
        assert result.period > 2.0**Z * (1.0 + 1e-9)


class TestSpecializedHardnessIntuition:
    def test_grouping_constraint_costs_throughput(self):
        # The specialized optimum can be strictly worse than the general
        # optimum on the same instance — the restriction is real.
        inst = make_random_instance(6, 2, 3, seed=17, f_low=0.05, f_high=0.15)
        specialized = bruteforce_optimal(inst, "specialized").period
        general = bruteforce_optimal(inst, "general").period
        assert general <= specialized + 1e-9
