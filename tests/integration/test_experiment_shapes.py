"""Integration tests: reduced-size experiment runs reproduce the paper's shape.

These tests run scaled-down versions of the paper's figures (fewer sweep
points and repetitions) and assert the *qualitative* conclusions of
Section 7 — which heuristic wins, roughly by how much — without pinning
absolute millisecond values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import run_figure
from repro.experiments.runner import MIP_LABEL, OTO_LABEL


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fig5_small():
    return run_figure("fig5", seed=1, repetitions=3, max_points=3)


@pytest.fixture(scope="module")
def fig10_small():
    return run_figure("fig10", seed=1, repetitions=3, max_points=3, milp_time_limit=20.0)


class TestFigure5Shape:
    def test_all_six_heuristics_reported(self, fig5_small):
        assert set(fig5_small.series) == {"H1", "H2", "H3", "H4", "H4w", "H4f"}

    def test_h1_and_h4f_are_the_worst(self, fig5_small):
        means = {name: np.mean(series.means()) for name, series in fig5_small.series.items()}
        informed_best = min(means["H2"], means["H3"], means["H4"], means["H4w"])
        assert means["H1"] > informed_best
        assert means["H4f"] > informed_best

    def test_period_grows_with_the_number_of_tasks(self, fig5_small):
        for name in ("H2", "H4w"):
            series = fig5_small.series[name]
            means = series.means()
            assert means[-1] > means[0]

    def test_h4w_close_to_the_best_informed_heuristic(self, fig5_small):
        means = {name: np.mean(series.means()) for name, series in fig5_small.series.items()}
        best = min(means[n] for n in ("H2", "H3", "H4", "H4w"))
        assert means["H4w"] <= 1.5 * best


class TestFigure9Shape:
    @pytest.fixture(scope="class")
    def fig9_small(self):
        return run_figure("fig9", seed=2, repetitions=2, max_points=3)

    def test_oto_curve_present_and_below_heuristics(self, fig9_small):
        assert OTO_LABEL in fig9_small.series
        report = fig9_small.normalization_report(OTO_LABEL)
        for name in ("H2", "H3", "H4w"):
            # The heuristics sit above the optimal one-to-one mapping.  Our
            # OtO baseline (a true bottleneck-assignment optimum) is stronger
            # than what the paper appears to plot, so the band is wider than
            # the paper's 1.28-1.84 (see EXPERIMENTS.md for the discussion).
            assert 1.0 <= report.factor(name) < 4.0

    def test_heuristics_close_to_the_optimum_at_low_type_counts(self, fig9_small):
        # At the low end of the p sweep the heuristics are within ~2x of the
        # optimum (the paper's regime where H4w is "very close" to OtO).
        low_p = min(fig9_small.series[OTO_LABEL].x_values)
        oto_mean = fig9_small.series[OTO_LABEL].point(low_p).mean
        best_heuristic = min(
            fig9_small.series[name].point(low_p).mean for name in ("H2", "H3", "H4w")
        )
        assert best_heuristic <= 2.0 * oto_mean


class TestFigure10And11Shape:
    def test_mip_never_above_the_heuristics(self, fig10_small):
        assert MIP_LABEL in fig10_small.series
        mip = fig10_small.series[MIP_LABEL]
        for name in ("H2", "H3", "H4", "H4w"):
            series = fig10_small.series[name]
            for x in series.x_values:
                pairs = zip(series.samples[x], mip.samples[x])
                for heuristic_value, optimum in pairs:
                    if np.isfinite(optimum):
                        assert heuristic_value >= optimum - 1e-6

    def test_normalised_factors_in_paper_band(self, fig10_small):
        report = fig10_small.normalization_report(MIP_LABEL)
        # The paper reports H4w ~1.33, H3 ~1.58, H2 ~1.73 (and H1 much worse);
        # on reduced sweeps we only check the coarse band and ordering vs H1.
        for name in ("H2", "H3", "H4", "H4w"):
            assert 1.0 <= report.factor(name) < 2.2
        assert report.factor("H1") > report.factor("H4w")

    def test_figure11_is_figure10_normalised(self):
        result = run_figure("fig11", seed=1, repetitions=2, max_points=2, milp_time_limit=20.0)
        normalized = result.reported_series()
        assert MIP_LABEL not in normalized
        for series in normalized.values():
            for x in series.x_values:
                point = series.point(x)
                if point.count:
                    assert point.mean >= 1.0 - 1e-9


class TestFigure8HighFailures:
    def test_high_failure_periods_dominate_low_failure_periods(self):
        # Same scenario name and seed => identical applications and w
        # matrices; only the failure range differs, and the failure draws
        # scale the same underlying uniforms, so the high-failure rates
        # dominate pointwise and the periods must be larger.
        from dataclasses import replace

        from repro.experiments.figures import FIGURES
        from repro.experiments.runner import run_scenario

        scenario = FIGURES["fig8"].scenario.scaled(repetitions=2, max_points=2)
        high = run_scenario(scenario, seed=3)
        low = run_scenario(replace(scenario, f_range=(0.0, 0.02)), seed=3)
        for x in high.series["H2"].x_values:
            assert high.series["H2"].point(x).mean > low.series["H2"].point(x).mean
