"""Integration: the campaign DAG reproduces the legacy pipeline bit-for-bit.

The acceptance test of the `repro.dag` subsystem: running a campaign
through the content-addressed stage DAG must produce (1) the same cell
records and exports as the pre-DAG `run_figure` path, byte for byte;
(2) a second identical run that performs **zero** solves and serves
every stage from the artifact cache with unchanged exports; (3) the
same bytes again when the solve phase runs through the work-stealing
process pool instead of the serial engine.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignManifest
from repro.dag import build_pipeline, run_pipeline
from repro.experiments import ResultStore, aggregate_seeds, run_figure

SEEDS = (0, 1)


@pytest.fixture(scope="module")
def manifest() -> CampaignManifest:
    """A scaled-down fig5 multi-seed campaign (no exact baselines)."""
    return CampaignManifest(
        figures=("fig5",), seeds=SEEDS, repetitions=4, max_points=2
    )


@pytest.fixture(scope="module")
def legacy_store(manifest, tmp_path_factory) -> ResultStore:
    """The pre-DAG reference: every (figure, seed) run via run_figure."""
    store = ResultStore(tmp_path_factory.mktemp("legacy"))
    for figure_id in manifest.figures:
        for seed in manifest.seeds:
            run_figure(
                figure_id,
                seed=seed,
                repetitions=manifest.repetitions,
                max_points=manifest.max_points,
                store=store,
            )
    store.close()
    return store


@pytest.fixture(scope="module")
def dag_store(manifest, tmp_path_factory):
    """One DAG execution plus its run result."""
    store = ResultStore(tmp_path_factory.mktemp("dag"))
    run = run_pipeline(build_pipeline(manifest), store)
    return store, run


def _cell_map(store: ResultStore) -> dict:
    return {
        record.key: (record.repetitions, record.values, record.failures)
        for record in store.cells()
    }


class TestDagEqualsLegacy:
    def test_first_run_computes_every_stage(self, dag_store):
        _, run = dag_store
        assert run.report.total_hits == 0
        assert run.report.computed["solve"] > 0
        assert run.report.hit_rate() == 0.0

    def test_cells_are_bit_for_bit_identical(self, dag_store, legacy_store):
        store, _ = dag_store
        assert _cell_map(store) == _cell_map(legacy_store)

    def test_per_seed_exports_match(self, dag_store, legacy_store, manifest):
        store, run = dag_store
        for seed in manifest.seeds:
            legacy_csv = legacy_store.load_result("fig5", seed=seed).to_csv()
            assert run.renders["fig5"]["per_seed"][str(seed)] == legacy_csv
            assert store.load_result("fig5", seed=seed).to_csv() == legacy_csv

    def test_aggregate_export_matches(self, dag_store, legacy_store):
        _, run = dag_store
        pooled, seeds = aggregate_seeds(legacy_store, "fig5", ci="pooled")
        assert tuple(seeds) == SEEDS
        assert run.renders["fig5"]["aggregate"] == pooled.to_csv()


class TestZeroSolveRerun:
    def test_identical_rerun_hits_every_stage(self, dag_store, manifest):
        store, first = dag_store
        second = run_pipeline(build_pipeline(manifest), store)
        assert second.report.computed["solve"] == 0
        assert sum(second.report.computed.values()) == 0
        assert second.report.hit_rate() == 1.0
        assert second.renders == first.renders

    def test_legacy_store_adopts_without_solving(self, legacy_store, manifest):
        # A store written entirely by the pre-DAG path: the DAG adopts
        # its cells as solve hits and still renders the same bytes.
        with ResultStore(legacy_store.path) as store:
            run = run_pipeline(build_pipeline(manifest), store)
        assert run.report.computed["solve"] == 0
        for seed in manifest.seeds:
            legacy_csv = legacy_store.load_result("fig5", seed=seed).to_csv()
            assert run.renders["fig5"]["per_seed"][str(seed)] == legacy_csv


class TestParallelDispatch:
    def test_worker_pool_with_stealing_matches_serial(
        self, dag_store, manifest, tmp_path_factory
    ):
        serial_store, serial_run = dag_store
        store = ResultStore(tmp_path_factory.mktemp("dag-parallel"))
        run = run_pipeline(build_pipeline(manifest), store, workers=2)
        assert run.report.computed["solve"] == serial_run.report.computed["solve"]
        assert run.renders == serial_run.renders
        assert _cell_map(store) == _cell_map(serial_store)
        store.close()
