"""Integration test: the CLI end-to-end on a reduced figure run."""

from __future__ import annotations

import csv
import io

import pytest

from repro.cli import main


def test_cli_csv_output_without_milp_parses(capsys):
    """Fast tier-1 variant: a scaled-down run with the MIP skipped."""
    code = main(
        [
            "run",
            "fig6",
            "--repetitions",
            "2",
            "--max-points",
            "2",
            "--seed",
            "5",
            "--no-milp",
            "--csv",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    rows = list(csv.DictReader(io.StringIO(output)))
    assert len(rows) == 2
    for row in rows:
        assert float(row["H4w_mean"]) > 0


@pytest.mark.slow
def test_cli_csv_output_parses_and_has_consistent_columns(capsys):
    code = main(
        [
            "run",
            "fig10",
            "--repetitions",
            "2",
            "--max-points",
            "2",
            "--seed",
            "5",
            "--csv",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    rows = list(csv.DictReader(io.StringIO(output)))
    assert len(rows) == 2
    # Normalised output (fig10 itself is raw periods; check heuristic columns).
    assert any(key.startswith("H4w") for key in rows[0])
    for row in rows:
        mean = float(row["H4w_mean"])
        assert mean > 0


@pytest.mark.slow
def test_cli_report_mentions_mip_factors(capsys):
    code = main(
        [
            "run",
            "fig10",
            "--repetitions",
            "2",
            "--max-points",
            "2",
            "--seed",
            "5",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "Aggregate factors relative to MIP" in output
    assert "Paper's expected shape" in output
