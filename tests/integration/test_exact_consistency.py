"""Integration tests: the three exact solvers agree with each other.

The MIP (HiGHS), the pure-Python branch-and-bound and the exhaustive
oracle implement the same optimisation problem through completely
different code paths; agreeing optima on a batch of random instances is
strong evidence that the Section-6.1 model was transcribed correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exact import (
    bruteforce_optimal,
    solve_specialized_branch_and_bound,
    solve_specialized_milp,
)
from repro.heuristics import PAPER_HEURISTICS, get_heuristic
from tests.helpers import make_random_instance


pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seed", range(6))
def test_milp_branch_and_bound_bruteforce_agree(seed):
    inst = make_random_instance(6, 2, 3, seed=seed)
    milp = solve_specialized_milp(inst)
    bb = solve_specialized_branch_and_bound(inst)
    brute = bruteforce_optimal(inst, "specialized")
    assert milp.is_optimal and bb.proved_optimal
    assert milp.period == pytest.approx(brute.period, rel=1e-6)
    assert bb.period == pytest.approx(brute.period, rel=1e-9)


@pytest.mark.parametrize("seed", range(4))
def test_milp_and_branch_and_bound_agree_beyond_bruteforce_reach(seed):
    # 10 tasks on 4 machines: too large for the exhaustive oracle but still
    # comfortable for both exact solvers.
    inst = make_random_instance(10, 3, 4, seed=100 + seed)
    milp = solve_specialized_milp(inst)
    bb = solve_specialized_branch_and_bound(inst)
    assert milp.is_optimal and bb.proved_optimal
    assert milp.period == pytest.approx(bb.period, rel=1e-6)


@pytest.mark.parametrize("seed", range(4))
def test_high_failure_rates_do_not_break_agreement(seed):
    inst = make_random_instance(6, 2, 3, seed=200 + seed, f_low=0.0, f_high=0.10)
    milp = solve_specialized_milp(inst)
    bb = solve_specialized_branch_and_bound(inst)
    assert milp.is_optimal and bb.proved_optimal
    assert milp.period == pytest.approx(bb.period, rel=1e-6)


def test_every_heuristic_dominated_by_the_exact_optimum_across_a_batch():
    rng = np.random.default_rng(0)
    for seed in range(5):
        inst = make_random_instance(8, 3, 4, seed=300 + seed)
        optimum = solve_specialized_branch_and_bound(inst).period
        for name in PAPER_HEURISTICS:
            heuristic_period = get_heuristic(name).solve(inst, rng).period
            assert heuristic_period >= optimum - 1e-6


def test_optimum_unaffected_by_heuristic_seed():
    # The exact optimum is a property of the instance alone; solving twice
    # (with the randomized incumbent initialisation inside B&B) must agree.
    inst = make_random_instance(9, 3, 4, seed=42)
    a = solve_specialized_branch_and_bound(inst)
    b = solve_specialized_branch_and_bound(inst)
    assert a.period == pytest.approx(b.period, rel=1e-12)
