"""Shared helpers importable from any test module (``from tests.helpers import ...``)."""

from __future__ import annotations

import numpy as np

from repro.core import FailureModel, Platform, ProblemInstance
from repro.generators import (
    random_chain_application,
    random_failure_rates,
    random_processing_times,
)

__all__ = ["make_random_instance"]


def make_random_instance(
    num_tasks: int,
    num_types: int,
    num_machines: int,
    seed: int = 0,
    *,
    f_low: float = 0.005,
    f_high: float = 0.02,
    task_dependent: bool = False,
) -> ProblemInstance:
    """Build a random paper-style linear-chain instance."""
    generator = np.random.default_rng(seed)
    app = random_chain_application(num_tasks, num_types, generator)
    w = random_processing_times(app.types, num_machines, generator)
    f = random_failure_rates(
        num_tasks,
        num_machines,
        generator,
        low=f_low,
        high=f_high,
        task_dependent=task_dependent,
    )
    return ProblemInstance(app, Platform(w, types=app.types), FailureModel(f))
