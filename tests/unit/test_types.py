"""Unit tests for repro.core.types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import (
    TaskType,
    TypeAssignment,
    blocked_type_assignment,
    cyclic_type_assignment,
    random_type_assignment,
)
from repro.exceptions import InvalidApplicationError


class TestTaskType:
    def test_basic_attributes(self):
        t = TaskType(2, "gripping")
        assert t.index == 2
        assert int(t) == 2
        assert str(t) == "gripping"

    def test_default_name(self):
        assert str(TaskType(0)) == "type0"

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidApplicationError):
            TaskType(-1)

    def test_equality_with_int_and_tasktype(self):
        assert TaskType(3) == 3
        assert TaskType(3) == TaskType(3, "other-name")
        assert TaskType(3) != TaskType(4)

    def test_hashable_by_index(self):
        assert {TaskType(1, "a"), TaskType(1, "b")} == {TaskType(1)}


class TestTypeAssignment:
    def test_length_and_indexing(self):
        ta = TypeAssignment([0, 1, 1, 0])
        assert len(ta) == 4
        assert ta[1] == 1
        assert list(ta) == [0, 1, 1, 0]

    def test_num_types_inferred(self):
        assert TypeAssignment([0, 2, 1]).num_types == 3

    def test_num_types_explicit_larger(self):
        assert TypeAssignment([0, 0], num_types=4).num_types == 4

    def test_num_types_explicit_too_small_rejected(self):
        with pytest.raises(InvalidApplicationError):
            TypeAssignment([0, 3], num_types=2)

    def test_empty_rejected(self):
        with pytest.raises(InvalidApplicationError):
            TypeAssignment([])

    def test_negative_rejected(self):
        with pytest.raises(InvalidApplicationError):
            TypeAssignment([0, -1])

    def test_tasks_of_type(self):
        ta = TypeAssignment([0, 1, 0, 2, 1])
        assert ta.tasks_of_type(0).tolist() == [0, 2]
        assert ta.tasks_of_type(1).tolist() == [1, 4]
        assert ta.tasks_of_type(2).tolist() == [3]
        assert ta.tasks_of_type(7).tolist() == []

    def test_type_counts(self):
        counts = TypeAssignment([0, 1, 0, 2, 1]).type_counts()
        assert counts == {0: 2, 1: 2, 2: 1}

    def test_used_types_skips_unused(self):
        ta = TypeAssignment([0, 2], num_types=5)
        assert ta.used_types() == [0, 2]

    def test_equality(self):
        assert TypeAssignment([0, 1]) == TypeAssignment([0, 1])
        assert TypeAssignment([0, 1]) != TypeAssignment([1, 0])
        assert TypeAssignment([0, 1]) != TypeAssignment([0, 1], num_types=3)

    def test_validate_against(self):
        ta = TypeAssignment([0, 1, 0])
        ta.validate_against(3)
        with pytest.raises(InvalidApplicationError):
            ta.validate_against(4)

    def test_array_is_read_only(self):
        ta = TypeAssignment([0, 1])
        with pytest.raises(ValueError):
            ta.as_array[0] = 5


class TestGenerativeAssignments:
    def test_cyclic_covers_all_types(self):
        ta = cyclic_type_assignment(10, 3)
        assert ta.num_types == 3
        assert ta.used_types() == [0, 1, 2]
        assert list(ta)[:6] == [0, 1, 2, 0, 1, 2]

    def test_cyclic_rejects_more_types_than_tasks(self):
        with pytest.raises(InvalidApplicationError):
            cyclic_type_assignment(2, 3)

    def test_blocked_assignment_is_monotone(self):
        ta = blocked_type_assignment(10, 3)
        values = list(ta)
        assert values == sorted(values)
        assert ta.used_types() == [0, 1, 2]

    def test_blocked_rejects_bad_dimensions(self):
        with pytest.raises(InvalidApplicationError):
            blocked_type_assignment(0, 1)
        with pytest.raises(InvalidApplicationError):
            blocked_type_assignment(3, 5)

    def test_random_assignment_covers_all_types(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            ta = random_type_assignment(8, 5, rng, ensure_all_types=True)
            assert ta.used_types() == [0, 1, 2, 3, 4]

    def test_random_assignment_reproducible(self):
        a = random_type_assignment(20, 4, np.random.default_rng(7))
        b = random_type_assignment(20, 4, np.random.default_rng(7))
        assert list(a) == list(b)

    def test_random_assignment_rejects_bad_dimensions(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InvalidApplicationError):
            random_type_assignment(0, 1, rng)
        with pytest.raises(InvalidApplicationError):
            random_type_assignment(3, 4, rng)
