"""Unit tests for the micro-factory simulator (repro.simulation.factory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Application,
    FailureModel,
    Mapping,
    Platform,
    ProblemInstance,
    TypeAssignment,
    evaluate,
    in_tree,
)
from repro.exceptions import SimulationError
from repro.simulation import MicroFactorySimulation, SimulationTrace, TraceEventType, simulate_mapping


def _two_task_instance(f0: float = 0.0, f1: float = 0.0) -> ProblemInstance:
    app = Application.chain(TypeAssignment([0, 1]))
    w = np.array([[100.0, 100.0], [200.0, 200.0]])
    f = np.array([[f0, f0], [f1, f1]])
    return ProblemInstance(app, Platform(w), FailureModel(f))


class TestDeterministicRuns:
    def test_failure_free_chain_counts(self):
        inst = _two_task_instance()
        metrics = simulate_mapping(inst, Mapping([0, 1], 2), 10, rng=np.random.default_rng(0))
        assert metrics.finished_products == 10
        # Without failures every execution succeeds: 10 outputs need exactly
        # 10 executions of the sink task.
        assert metrics.executions[1] == 10
        assert metrics.losses.sum() == 0
        assert metrics.empirical_failure_rates[1] == 0.0

    def test_failure_free_period_matches_analytic(self):
        inst = _two_task_instance()
        mapping = Mapping([0, 1], 2)
        metrics = simulate_mapping(inst, mapping, 50, rng=np.random.default_rng(0))
        analytic = evaluate(inst, mapping).period
        assert metrics.empirical_period == pytest.approx(analytic, rel=0.1)
        assert metrics.steady_state_output_interval == pytest.approx(analytic, rel=0.1)

    def test_single_machine_serialises_both_tasks(self):
        inst = _two_task_instance()
        mapping = Mapping([0, 0], 2)
        metrics = simulate_mapping(inst, mapping, 20, rng=np.random.default_rng(0))
        analytic = evaluate(inst, mapping).period  # 300 ms per product
        assert metrics.empirical_period == pytest.approx(analytic, rel=0.15)

    def test_output_times_increasing(self):
        inst = _two_task_instance()
        metrics = simulate_mapping(inst, Mapping([0, 1], 2), 25, rng=np.random.default_rng(1))
        assert np.all(np.diff(metrics.output_times) >= -1e-9)

    def test_makespan_positive_and_consistent(self):
        inst = _two_task_instance()
        metrics = simulate_mapping(inst, Mapping([0, 1], 2), 5, rng=np.random.default_rng(1))
        assert metrics.makespan >= 5 * 200.0  # at least 5 sink executions
        assert metrics.machine_busy_time[1] <= metrics.makespan


class TestStochasticFailures:
    def test_losses_recorded_with_high_failure(self):
        inst = _two_task_instance(f0=0.4, f1=0.0)
        metrics = simulate_mapping(inst, Mapping([0, 1], 2), 50, rng=np.random.default_rng(2))
        assert metrics.losses[0] > 0
        # Observed loss ratio should be near 40% with 50+ executions.
        assert metrics.empirical_failure_rates[0] == pytest.approx(0.4, abs=0.15)

    def test_batch_mode_estimates_expected_products(self):
        inst = _two_task_instance(f0=0.2, f1=0.2)
        mapping = Mapping([0, 1], 2)
        sim = MicroFactorySimulation(inst, mapping, np.random.default_rng(3))
        metrics = sim.run_batch(4000)
        x = evaluate(inst, mapping).expected_products
        ratio_sink = metrics.executions[1] / metrics.finished_products
        assert ratio_sink == pytest.approx(x[1], rel=0.05)
        # Raw products consumed per finished product approximates x_0.
        ratio_source = metrics.raw_products_injected[0] / metrics.finished_products
        assert ratio_source == pytest.approx(x[0], rel=0.05)

    def test_batch_mode_conserves_products(self):
        inst = _two_task_instance(f0=0.3, f1=0.1)
        sim = MicroFactorySimulation(inst, Mapping([0, 1], 2), np.random.default_rng(4))
        metrics = sim.run_batch(500)
        # Every injected raw product is eventually either lost or output.
        assert metrics.finished_products + metrics.losses.sum() == 500
        # Successes of the source equal executions of the sink (chain flow).
        assert metrics.successes[0] == metrics.executions[1]

    def test_reproducible_with_seed(self):
        inst = _two_task_instance(f0=0.2, f1=0.1)
        m1 = simulate_mapping(inst, Mapping([0, 1], 2), 30, rng=np.random.default_rng(7))
        m2 = simulate_mapping(inst, Mapping([0, 1], 2), 30, rng=np.random.default_rng(7))
        assert m1.makespan == m2.makespan
        assert np.array_equal(m1.executions, m2.executions)


class TestJoins:
    def test_join_requires_both_branches(self):
        tree = in_tree([1, 1], num_types=1, shared_tail_length=1)
        platform = Platform([[100.0] * 3, [500.0] * 3, [50.0] * 3])
        inst = ProblemInstance(tree, platform, FailureModel.failure_free(3, 3))
        metrics = simulate_mapping(inst, Mapping([0, 1, 2], 3), 10, rng=np.random.default_rng(0))
        # The join (task 2) can only run as often as the slowest branch allows.
        assert metrics.executions[2] == 10
        assert metrics.finished_products == 10
        # Slow branch (500 ms) is the bottleneck.
        analytic = evaluate(inst, Mapping([0, 1, 2], 3)).period
        assert metrics.empirical_period == pytest.approx(analytic, rel=0.15)


class TestValidationAndTrace:
    def test_invalid_target_rejected(self):
        inst = _two_task_instance()
        sim = MicroFactorySimulation(inst, Mapping([0, 1], 2))
        with pytest.raises(SimulationError):
            sim.run(0)
        with pytest.raises(SimulationError):
            sim.run_batch(0)

    def test_max_events_guard(self):
        inst = _two_task_instance()
        sim = MicroFactorySimulation(inst, Mapping([0, 1], 2), np.random.default_rng(0))
        with pytest.raises(SimulationError, match="safety cap"):
            sim.run(10_000, max_events=50)

    def test_max_time_stops_early(self):
        inst = _two_task_instance()
        sim = MicroFactorySimulation(inst, Mapping([0, 1], 2), np.random.default_rng(0))
        metrics = sim.run(10_000, max_time=2_000.0)
        assert metrics.finished_products < 10_000
        assert metrics.makespan <= 2_300.0  # one event past the cap at most

    def test_trace_records_lifecycle(self):
        inst = _two_task_instance(f0=0.3)
        trace = SimulationTrace()
        simulate_mapping(
            inst, Mapping([0, 1], 2), 10, rng=np.random.default_rng(5), trace=trace
        )
        assert trace.count(TraceEventType.PRODUCT_OUTPUT) == 10
        assert trace.count(TraceEventType.EXECUTION_STARTED) > 10
        assert trace.count(TraceEventType.RAW_INJECTED) > 0
        started = trace.filter(TraceEventType.EXECUTION_STARTED)
        assert all(r.machine >= 0 and r.task >= 0 for r in started)

    def test_trace_max_records(self):
        inst = _two_task_instance()
        trace = SimulationTrace(max_records=5)
        simulate_mapping(inst, Mapping([0, 1], 2), 10, rng=np.random.default_rng(5), trace=trace)
        assert len(trace) == 5
