"""The pluggable kernel-backend registry and its bit-for-bit contract.

Three batteries:

* registry semantics — selection order (``set_backend`` > the
  ``REPRO_BACKEND`` environment variable > auto-detection), unknown
  names, and the single-warning numpy fallback when the numba backend
  cannot load;
* kernel-level equivalence — every available backend's six kernels
  against the numpy reference on randomized inputs, exact equality;
* solver-level equivalence — every available backend x every
  batch-capable heuristic on scaled fig5/fig9/fig10 sweep points,
  bit-for-bit against the per-instance scalar path run on the numpy
  reference backend.

The numba batteries run wherever ``pip install -e .[numba]`` happened
(the CI ``backend-numba`` job); on numpy-only installs
``available_backends()`` simply yields fewer parameters.
"""

from __future__ import annotations

import sys
import warnings

import numpy as np
import pytest

import repro.backend as backend_mod
from repro.backend import (
    BACKEND_ENV_VAR,
    available_backends,
    backend_info,
    get_backend,
    numba_status,
    registered_backends,
    set_backend,
    use_backend,
)
from repro.backend import numpy_backend
from repro.exceptions import ReproError
from repro.experiments.figures import FIGURES
from repro.experiments.providers import CellBlock, HeuristicProvider
from repro.simulation.rng import RandomStreamFactory

#: Every batch-capable heuristic of the paper set (H1 is randomized and
#: has no lock-step kernel; the scalar fallback path covers it).
BATCH_HEURISTICS = ("H2", "H3", "H4", "H4w", "H4f", "H4ls")

#: Figures whose shapes the solver-level battery samples (task sweep at
#: m=50, types sweep at n=m=100, the small-platform tasks sweep).
EQUIVALENCE_FIGURES = ("fig5", "fig9", "fig10")


@pytest.fixture
def registry_state(monkeypatch):
    """Isolate the module-level backend state for one test."""
    monkeypatch.setattr(backend_mod, "_INSTANCES", dict(backend_mod._INSTANCES))
    monkeypatch.setattr(backend_mod, "_ACTIVE", None)
    monkeypatch.setattr(backend_mod, "_EXPLICIT", None)
    monkeypatch.setattr(backend_mod, "_WARNED", set())
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert registered_backends() == ["numpy", "numba"]

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError):
            backend_mod.register_backend("numpy", numpy_backend.make_backend)

    def test_auto_detection_matches_numba_presence(self, registry_state):
        expected = "numba" if numba_status()[0] else "numpy"
        assert get_backend().name == expected

    def test_env_var_selects_backend(self, registry_state, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend().name == "numpy"

    def test_unknown_env_var_raises(self, registry_state, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        with pytest.raises(ReproError, match="unknown kernel backend"):
            get_backend()

    def test_set_backend_overrides_env(self, registry_state, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fortran")
        assert set_backend("numpy").name == "numpy"
        assert get_backend().name == "numpy"

    def test_set_backend_unknown_name_raises(self, registry_state):
        with pytest.raises(ReproError, match="unknown kernel backend"):
            set_backend("fortran")

    def test_use_backend_restores_previous(self, registry_state):
        set_backend("numpy")
        with use_backend("numpy") as active:
            assert active.name == "numpy"
        assert get_backend().name == "numpy"

    def test_backend_info_shape(self, registry_state):
        info = backend_info()
        assert set(info) == {"name", "registered", "numba"}
        assert info["name"] in info["registered"]
        assert set(info["numba"]) == {"available", "version"}

    def test_broken_numba_falls_back_with_single_warning(
        self, registry_state, monkeypatch
    ):
        # A poisoned sys.modules entry makes `from numba import njit`
        # raise whether or not numba is actually installed.
        monkeypatch.setitem(sys.modules, "numba", None)
        backend_mod._INSTANCES.pop("numba", None)
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert set_backend("numba").name == "numpy"
        # Selecting it again must not warn a second time.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert set_backend("numba").name == "numpy"
        assert caught == []

    def test_auto_detection_is_silent_without_numba(
        self, registry_state, monkeypatch
    ):
        monkeypatch.setitem(sys.modules, "numba", None)
        backend_mod._INSTANCES.pop("numba", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert get_backend().name == "numpy"
        assert caught == []


def _random_kernel_inputs(seed: int, R: int = 7, n: int = 11, m: int = 6):
    rng = np.random.default_rng(seed)
    order = np.arange(n - 1, -1, -1, dtype=np.int64)  # reverse of a chain
    succ = np.array([t + 1 for t in range(n - 1)] + [-1], dtype=np.int64)
    f_used = rng.uniform(0.01, 0.3, size=(R, n))
    assignments = rng.integers(0, m, size=(R, n), dtype=np.int64)
    contributions = rng.uniform(0.1, 5.0, size=(R, n))
    base = rng.uniform(0.0, 10.0, size=(R, m))
    rest = rng.uniform(0.0, 10.0, size=(R, m))
    ratios = rng.uniform(0.5, 2.0, size=(R, m))
    x_task = rng.uniform(1.0, 3.0, size=R)
    w_task = rng.uniform(0.1, 5.0, size=(R, m))
    pref = np.stack([rng.permutation(m) for _ in range(R)]).astype(np.int64)
    feasible = rng.random(size=(R, m)) < 0.4
    feasible[0, :] = False  # exercise the argmax-of-all-False convention
    return {
        "order": order,
        "succ": succ,
        "f_used": f_used,
        "assignments": assignments,
        "contributions": contributions,
        "m": m,
        "base": base,
        "rest": rest,
        "ratios": ratios,
        "x_task": x_task,
        "w_task": w_task,
        "pref": pref,
        "feasible": feasible,
    }


@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("seed", (0, 1, 2))
class TestKernelEquivalence:
    """Each backend kernel vs the numpy reference, exact equality."""

    def test_propagate_x(self, backend_name, seed):
        inputs = _random_kernel_inputs(seed)
        backend = get_backend(backend_name)
        expected = numpy_backend.propagate_x(
            inputs["order"], inputs["succ"], inputs["f_used"]
        )
        actual = backend.propagate_x(
            inputs["order"], inputs["succ"], inputs["f_used"]
        )
        assert np.array_equal(actual, expected)

    def test_scatter_periods(self, backend_name, seed):
        inputs = _random_kernel_inputs(seed)
        backend = get_backend(backend_name)
        expected = numpy_backend.scatter_periods(
            inputs["assignments"], inputs["contributions"], inputs["m"]
        )
        actual = backend.scatter_periods(
            inputs["assignments"], inputs["contributions"], inputs["m"]
        )
        assert np.array_equal(actual, expected)

    def test_scatter_add_rows(self, backend_name, seed):
        inputs = _random_kernel_inputs(seed)
        backend = get_backend(backend_name)
        expected = inputs["base"].copy()
        cols = inputs["assignments"][:, : inputs["m"]] % inputs["m"]
        vals = inputs["contributions"][:, : inputs["m"]]
        numpy_backend.scatter_add_rows(expected, cols, vals)
        actual = inputs["base"].copy()
        backend.scatter_add_rows(actual, cols, vals)
        assert np.array_equal(actual, expected)

    def test_critical_mask(self, backend_name, seed):
        inputs = _random_kernel_inputs(seed)
        backend = get_backend(backend_name)
        periods = numpy_backend.scatter_periods(
            inputs["assignments"], inputs["contributions"], inputs["m"]
        )
        expected = numpy_backend.critical_mask(periods, 1e-9)
        actual = backend.critical_mask(periods, 1e-9)
        assert np.array_equal(actual, expected)

    def test_probe_candidates(self, backend_name, seed):
        inputs = _random_kernel_inputs(seed)
        backend = get_backend(backend_name)
        args = (
            inputs["base"],
            inputs["rest"],
            inputs["ratios"],
            inputs["x_task"],
            inputs["w_task"],
        )
        assert np.array_equal(
            backend.probe_candidates(*args),
            numpy_backend.probe_candidates(*args),
        )

    def test_first_feasible(self, backend_name, seed):
        inputs = _random_kernel_inputs(seed)
        backend = get_backend(backend_name)
        assert np.array_equal(
            backend.first_feasible(inputs["pref"], inputs["feasible"]),
            numpy_backend.first_feasible(inputs["pref"], inputs["feasible"]),
        )


def _figure_block(figure_id: str) -> CellBlock:
    """The first sweep point of a figure, at a tier-1-friendly depth."""
    scenario = FIGURES[figure_id].scenario.scaled(repetitions=4, max_points=1)
    return CellBlock.sample(
        scenario, scenario.sweep_values[0], RandomStreamFactory(23)
    )


@pytest.fixture(scope="module")
def figure_blocks() -> dict[str, CellBlock]:
    return {figure_id: _figure_block(figure_id) for figure_id in EQUIVALENCE_FIGURES}


@pytest.fixture(scope="module")
def scalar_references(figure_blocks) -> dict[tuple[str, str], np.ndarray]:
    """Per-instance scalar solves on the numpy reference backend."""
    references = {}
    with use_backend("numpy"):
        for figure_id, block in figure_blocks.items():
            for name in BATCH_HEURISTICS:
                provider = HeuristicProvider(name, batch=False)
                references[(figure_id, name)] = provider.solve_block(block)
    return references


@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("heuristic", BATCH_HEURISTICS)
@pytest.mark.parametrize("figure_id", EQUIVALENCE_FIGURES)
class TestSolverEquivalence:
    """Backend x heuristic x figure: bit-for-bit vs the scalar path."""

    def test_batch_solve_matches_scalar_reference(
        self, backend_name, heuristic, figure_id, figure_blocks, scalar_references
    ):
        block = figure_blocks[figure_id]
        with use_backend(backend_name):
            batched = HeuristicProvider(heuristic, batch=True).solve_block(block)
        assert (batched == scalar_references[(figure_id, heuristic)]).all()

    def test_periods_match_across_backends(
        self, backend_name, heuristic, figure_id, figure_blocks, scalar_references
    ):
        block = figure_blocks[figure_id]
        assignments = scalar_references[(figure_id, heuristic)]
        with use_backend("numpy"):
            expected = block.stack.periods(assignments)
        with use_backend(backend_name):
            actual = block.stack.periods(assignments)
        assert np.array_equal(actual, expected)
