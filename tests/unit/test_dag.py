"""Unit tests for the content-addressed campaign DAG (`repro.dag`)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign import CampaignManifest, expand_units, plan
from repro.dag import (
    ArtifactStore,
    DispatchReport,
    artifact_store_for,
    build_pipeline,
    classify_curve,
    provider_cost,
    run_pipeline,
    steal_dispatch,
    unit_cost,
)
from repro.dag.stage import (
    GenerateStage,
    SolveStage,
    content_key,
    sliced_cell,
    values_consistent,
)
from repro.exceptions import ExperimentError
from repro.experiments.providers import MIP_LABEL
from repro.experiments.store import CellRecord, ResultStore


def _manifest(**overrides) -> CampaignManifest:
    defaults = dict(
        figures=("fig5",),
        seeds=(0,),
        repetitions=2,
        max_points=2,
        no_milp=True,
        milp_time_limit=30.0,
    )
    defaults.update(overrides)
    return CampaignManifest(**defaults)


class TestContentKey:
    def test_deterministic_and_order_independent(self):
        a = content_key({"x": 1, "y": [2, 3]})
        b = content_key({"y": [2, 3], "x": 1})
        assert a == b
        assert len(a) == 16
        assert content_key({"x": 2, "y": [2, 3]}) != a

    def test_stage_key_covers_params_and_inputs(self):
        manifest = _manifest()
        scenario = manifest.scenario_for("fig5")
        gen_a = GenerateStage("fig5", 0, scenario)
        gen_b = GenerateStage("fig5", 1, scenario)
        assert gen_a.key != gen_b.key
        solve_a = SolveStage(gen_a, "H4w", scenario.sweep_values[0])
        solve_b = SolveStage(gen_b, "H4w", scenario.sweep_values[0])
        # Same params, different upstream input -> different key.
        assert solve_a.params == solve_b.params
        assert solve_a.key != solve_b.key

    def test_milp_time_limit_keys_only_the_mip_curve(self):
        manifest = _manifest(no_milp=False)
        generate = GenerateStage("fig5", 0, manifest.scenario_for("fig5"))
        x = manifest.scenario_for("fig5").sweep_values[0]
        heur_30 = SolveStage(generate, "H4w", x, milp_time_limit=30.0)
        heur_60 = SolveStage(generate, "H4w", x, milp_time_limit=60.0)
        assert heur_30.key == heur_60.key
        mip_30 = SolveStage(generate, MIP_LABEL, x, milp_time_limit=30.0)
        mip_60 = SolveStage(generate, MIP_LABEL, x, milp_time_limit=60.0)
        assert mip_30.key != mip_60.key

    def test_code_version_invalidates(self, monkeypatch):
        generate = GenerateStage("fig5", 0, _manifest().scenario_for("fig5"))
        before = generate.key
        monkeypatch.setattr(GenerateStage, "CODE_VERSION", "999")
        assert GenerateStage("fig5", 0, _manifest().scenario_for("fig5")).key != before


class TestArtifactStore:
    def test_roundtrip_and_reopen(self, tmp_path):
        store = artifact_store_for(tmp_path / "s")
        assert isinstance(store, ArtifactStore)
        assert store.path == tmp_path / "s" / "artifacts"
        store.put("k1", "solve:x", {"values": [1.0, 2.0]})
        assert store.has("k1")
        assert not store.has("k2")
        assert store.get("k1") == {"values": [1.0, 2.0]}
        assert store.get("k2") is None
        store.flush()
        reopened = artifact_store_for(tmp_path / "s")
        assert reopened.get("k1") == {"values": [1.0, 2.0]}
        assert len(reopened) == 1

    def test_last_put_wins(self, tmp_path):
        store = artifact_store_for(tmp_path / "s")
        store.put("k", "solve:x", {"generation": 0})
        store.put("k", "solve:x", {"generation": 1})
        assert store.get("k") == {"generation": 1}
        assert len(store) == 1


class TestCostModel:
    def test_classification(self):
        assert classify_curve(MIP_LABEL) == "mip"
        assert classify_curve("OtO") == "oto"
        assert classify_curve("H4+ls") == "local_search"
        assert classify_curve("H4w") == "heuristic"

    def test_provider_cost_ordering(self):
        assert (
            provider_cost(MIP_LABEL)
            > provider_cost("OtO")
            > provider_cost("H4+ls")
            > provider_cost("H4w")
        )

    def test_unit_cost_scales_with_size_and_repetitions(self):
        manifest = _manifest(figures=("fig10",), no_milp=False)
        units = expand_units(manifest)
        mip = [u for u in units if u.curve == MIP_LABEL]
        heur = [u for u in units if u.curve == "H4w"]
        assert unit_cost(manifest, mip[0]) > unit_cost(manifest, heur[0])
        # Larger sweep value -> larger instance -> higher estimate.
        small = min(heur, key=lambda u: u.sweep_value)
        large = max(heur, key=lambda u: u.sweep_value)
        assert unit_cost(manifest, large) > unit_cost(manifest, small)
        doubled = _manifest(figures=("fig10",), no_milp=False, repetitions=4)
        assert unit_cost(doubled, heur[0]) == 2 * unit_cost(manifest, heur[0])


class TestCostBalancedPlan:
    def test_lpt_beats_round_robin_on_mixed_plan(self):
        # fig10 carries the MIP curve (~100x a list heuristic), so a
        # count-based round-robin leaves one shard MIP-free while LPT
        # spreads the expensive blocks.
        manifest = _manifest(figures=("fig10",), no_milp=False, seeds=(0,))

        def spread(shards):
            loads = [
                sum(unit_cost(manifest, unit) for unit in shard.units)
                for shard in shards
            ]
            return max(loads) - min(loads)

        naive = plan(manifest, shards=3, by="block", balance="round_robin")
        balanced = plan(manifest, shards=3, by="block", balance="cost")
        assert spread(balanced) < spread(naive)

    def test_cost_balance_keeps_canonical_unit_order(self):
        manifest = _manifest(no_milp=False, seeds=(0, 1))
        rank = {unit: i for i, unit in enumerate(expand_units(manifest))}
        for shard in plan(manifest, shards=2, by="block", balance="cost"):
            ranks = [rank[unit] for unit in shard.units]
            assert ranks == sorted(ranks)

    def test_partition_is_disjoint_and_complete(self):
        manifest = _manifest(no_milp=False, seeds=(0, 1, 2))
        shards = plan(manifest, shards=3, by="seed", balance="cost")
        merged = [unit for shard in shards for unit in shard.units]
        assert sorted(merged, key=lambda u: str(u)) == sorted(
            expand_units(manifest), key=lambda u: str(u)
        )
        # by=seed keeps whole seeds together whatever the balance policy.
        for shard in shards:
            assert len({unit.seed for unit in shard.units}) <= 1

    def test_unknown_balance_rejected(self):
        with pytest.raises(ExperimentError):
            plan(_manifest(), shards=2, balance="nope")


class TestStealDispatch:
    def _run(self, queues, costs=None, *, slots, steal=True):
        executed = []
        with ThreadPoolExecutor(max_workers=slots) as pool:
            report = steal_dispatch(
                pool,
                lambda item: item,
                queues,
                costs,
                slots=slots,
                steal=steal,
                on_result=lambda item, result: executed.append((item, result)),
            )
        return report, executed

    def test_everything_executes_exactly_once(self):
        queues = [[f"q{q}i{i}" for i in range(5)] for q in range(4)]
        report, executed = self._run(queues, slots=2)
        assert report.executed == 20
        assert sorted(item for item, _ in executed) == sorted(
            item for queue in queues for item in queue
        )
        assert all(item == result for item, result in executed)

    def test_idle_slot_steals_from_straggler(self):
        # Queue 0 (owned by slot 0) holds everything; slot 1 owns only
        # an empty queue and must steal or idle.
        queues = [list(range(50)), []]
        report, executed = self._run(queues, slots=2)
        assert report.executed == 50
        assert report.stolen > 0

    def test_steal_false_never_steals(self):
        queues = [list(range(20)), []]
        report, _ = self._run(queues, slots=2, steal=False)
        assert report.executed == 20
        assert report.stolen == 0

    def test_empty_queues(self):
        report, executed = self._run([[], []], slots=2)
        assert report == DispatchReport(queues=2, slots=2)
        assert executed == []


class TestSlicedCell:
    def _output(self, values, failures):
        return {"values": values, "failures": failures, "repetitions": len(values)}

    def test_matches_cell_record_sliced(self):
        nan = float("nan")
        for values, failures, want in [
            ([1.0, 2.0, 3.0], 0, 3),
            ([1.0, nan, 3.0], 1, 3),
            ([1.0, nan, 3.0], 1, 2),
            ([nan, 2.0, 3.0], 1, 1),
            ([1.0, 2.0, 3.0], 0, 2),
        ]:
            record = CellRecord(
                figure_id="figX",
                scenario_hash="abc",
                seed=0,
                curve="H4w",
                sweep_value=10,
                repetitions=len(values),
                values=list(values),
                failures=failures,
            )
            want_values, want_failures = record.sliced(want)
            got_values, got_failures = sliced_cell(self._output(values, failures), want)
            assert got_values == pytest.approx(want_values, nan_ok=True)
            assert got_failures == want_failures

    def test_values_consistent(self):
        assert values_consistent(self._output([1.0, 2.0], 0), 2)
        assert values_consistent(self._output([1.0, 2.0, 3.0], 0), 2)
        assert not values_consistent(self._output([1.0], 0), 2)


class TestPipeline:
    def test_counts_and_wiring(self):
        manifest = _manifest(seeds=(0, 1))
        pipeline = build_pipeline(manifest)
        counts = pipeline.counts()
        units = expand_units(manifest)
        assert counts["generate"] == 2
        assert counts["solve"] == len(units)
        assert counts["aggregate"] == 2
        assert counts["render"] == 1
        # Solve stages follow the canonical unit expansion order.
        assert list(pipeline.solves) == units
        # Each aggregate consumes exactly its own run's solve stages,
        # which all hang off that run's generate stage.
        for (figure_id, seed), aggregate in pipeline.aggregates.items():
            expected = [
                stage
                for unit, stage in pipeline.solves.items()
                if (unit.figure_id, unit.seed) == (figure_id, seed)
            ]
            assert list(aggregate.inputs) == expected
            generate = pipeline.generates[(figure_id, seed)]
            assert all(stage.inputs == (generate,) for stage in aggregate.inputs)

    def test_solves_for_unknown_unit_rejected(self):
        manifest = _manifest()
        pipeline = build_pipeline(manifest)
        foreign = expand_units(_manifest(seeds=(7,)))
        with pytest.raises(ExperimentError):
            pipeline.solves_for(foreign)


class TestRunPipeline:
    def test_second_run_is_all_hits_and_bit_identical(self, tmp_path):
        manifest = _manifest()
        store = ResultStore(tmp_path / "s")
        first = run_pipeline(build_pipeline(manifest), store)
        assert first.report.computed["solve"] == len(expand_units(manifest))
        assert first.report.total_hits == 0
        second = run_pipeline(build_pipeline(manifest), store)
        assert second.report.computed == {
            "generate": 0,
            "solve": 0,
            "aggregate": 0,
            "render": 0,
        }
        assert second.report.hit_rate() == 1.0
        assert second.renders == first.renders
        store.close()

    def test_legacy_store_is_adopted_without_resolving(self, tmp_path):
        from repro.experiments.runner import run_figure

        manifest = _manifest()
        store = ResultStore(tmp_path / "s")
        legacy = run_figure(
            "fig5",
            seed=0,
            repetitions=manifest.repetitions,
            max_points=manifest.max_points,
            include_milp=False,
            store=store,
        )
        run = run_pipeline(build_pipeline(manifest), store)
        assert run.report.computed["solve"] == 0
        assert run.report.hits["solve"] == len(expand_units(manifest))
        # The DAG's per-seed render is byte-identical to the legacy result.
        assert run.renders["fig5"]["per_seed"]["0"] == legacy.to_csv()
        store.close()

    def test_no_resume_recomputes_solves(self, tmp_path):
        manifest = _manifest()
        store = ResultStore(tmp_path / "s")
        run_pipeline(build_pipeline(manifest), store)
        forced = run_pipeline(build_pipeline(manifest), store, resume=False)
        assert forced.report.hits["solve"] == 0
        assert forced.report.computed["solve"] == len(expand_units(manifest))
        store.close()

    def test_changed_repetitions_invalidates_only_downstream(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        run_pipeline(build_pipeline(_manifest(repetitions=2)), store)
        # More repetitions: every solve key changes (scenario changed).
        deeper = run_pipeline(build_pipeline(_manifest(repetitions=3)), store)
        assert deeper.report.computed["solve"] > 0
        assert deeper.report.hits["solve"] == 0
        store.close()


def test_dag_package_imports_first():
    # repro.dag and repro.campaign import each other (the worker wraps
    # the DAG scheduler); `import repro.dag` in a fresh interpreter —
    # i.e. *before* repro.campaign — must not hit a circular import.
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-c", "import repro.dag; print(repro.dag.build_pipeline.__name__)"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "build_pipeline"
