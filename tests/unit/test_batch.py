"""Tests for the vectorized batch evaluation subsystem (`repro.batch`).

The central contract: every batch kernel must agree with the scalar
:mod:`repro.core.period` path — bit-for-bit for the array kernels, and
within 1e-9 for the incremental evaluator (whose updates are
multiplicative deltas).  The equivalence is exercised on well over 200
randomized (instance, mapping) pairs including chains, in-trees,
zero-failure and near-1 failure-probability edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.batch import (
    InstanceStack,
    MappingEvaluator,
    batch_critical_machines,
    batch_expected_products,
    batch_machine_periods,
    batch_periods,
    batch_throughputs,
    evaluate_batch,
)
from repro.batch.evaluation import as_assignment_array
from repro.core import (
    Application,
    FailureModel,
    Mapping,
    Platform,
    ProblemInstance,
    TypeAssignment,
    evaluate,
    in_tree,
)
from repro.exceptions import InvalidInstanceError, InvalidMappingError


def _random_instance(rng: np.random.Generator, *, f_low=0.0, f_high=0.3, tree=False):
    """A small random chain or in-tree instance."""
    if tree:
        branches = [int(rng.integers(1, 4)) for _ in range(int(rng.integers(2, 4)))]
        p = int(rng.integers(1, 4))
        app = in_tree(branches, p, shared_tail_length=int(rng.integers(1, 3)))
        n = app.num_tasks
    else:
        n = int(rng.integers(1, 13))
        p = int(rng.integers(1, n + 1))
        types = rng.integers(0, p, size=n)
        types[: min(p, n)] = np.arange(min(p, n))
        app = Application.chain(TypeAssignment(types.tolist(), num_types=p))
        n = app.num_tasks
    m = int(rng.integers(1, 7))
    per_type_w = rng.uniform(1.0, 1000.0, size=(app.num_types, m))
    w = per_type_w[np.asarray(list(app.types)), :]
    f = rng.uniform(f_low, f_high, size=(n, m))
    return ProblemInstance(app, Platform(w), FailureModel(f))


def _assert_batch_matches_scalar(instance, assignments):
    batch = evaluate_batch(instance, assignments)
    for r in range(assignments.shape[0]):
        scalar = evaluate(instance, Mapping(assignments[r], instance.num_machines))
        assert batch.periods[r] == scalar.period
        assert np.array_equal(batch.machine_periods[r], np.array(scalar.machine_periods))
        assert np.array_equal(
            batch.expected_products[r], np.array(scalar.expected_products)
        )
        assert batch.critical_machines(r) == scalar.critical_machines
        assert batch.throughputs[r] == scalar.throughput


class TestBatchEquivalence:
    def test_matches_scalar_on_200_randomized_cases(self):
        """≥200 random (instance, mapping) pairs, exact agreement."""
        rng = np.random.default_rng(987)
        cases = 0
        for trial in range(60):
            instance = _random_instance(rng, tree=trial % 4 == 0)
            R = 4
            assignments = rng.integers(
                0, instance.num_machines, size=(R, instance.num_tasks)
            )
            _assert_batch_matches_scalar(instance, assignments)
            cases += R
        assert cases >= 200

    def test_zero_failure_edge_case(self):
        rng = np.random.default_rng(5)
        instance = _random_instance(rng, f_low=0.0, f_high=0.0)
        assignments = rng.integers(0, instance.num_machines, size=(8, instance.num_tasks))
        _assert_batch_matches_scalar(instance, assignments)
        # With no failures every x is exactly 1.
        assert np.all(batch_expected_products(instance, assignments) == 1.0)

    def test_near_one_failure_probability_edge_case(self):
        rng = np.random.default_rng(6)
        instance = _random_instance(rng, f_low=0.999, f_high=0.999999)
        assignments = rng.integers(0, instance.num_machines, size=(8, instance.num_tasks))
        _assert_batch_matches_scalar(instance, assignments)
        assert np.all(np.isfinite(batch_periods(instance, assignments)))

    def test_accepts_mapping_objects_and_single_vector(self):
        rng = np.random.default_rng(7)
        instance = _random_instance(rng)
        vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
        mappings = [Mapping(vec, instance.num_machines)]
        from_objects = evaluate_batch(instance, mappings)
        from_vector = evaluate_batch(instance, vec)
        assert from_objects.periods[0] == from_vector.periods[0]
        assert len(from_vector) == 1

    def test_individual_kernels_consistent_with_evaluate_batch(self):
        rng = np.random.default_rng(8)
        instance = _random_instance(rng)
        assignments = rng.integers(0, instance.num_machines, size=(5, instance.num_tasks))
        batch = evaluate_batch(instance, assignments)
        assert np.array_equal(
            batch_machine_periods(instance, assignments), batch.machine_periods
        )
        assert np.array_equal(batch_periods(instance, assignments), batch.periods)
        assert np.array_equal(batch_throughputs(instance, assignments), batch.throughputs)
        assert np.array_equal(
            batch_critical_machines(instance, assignments), batch.critical_mask
        )

    def test_best_index_and_evaluation_view(self):
        rng = np.random.default_rng(9)
        instance = _random_instance(rng)
        assignments = rng.integers(0, instance.num_machines, size=(10, instance.num_tasks))
        batch = evaluate_batch(instance, assignments)
        best = batch.best_index()
        assert batch.periods[best] == batch.periods.min()
        view = batch.evaluation(best)
        direct = evaluate(instance, Mapping(assignments[best], instance.num_machines))
        assert view.period == direct.period
        assert view.machine_periods == direct.machine_periods
        assert view.critical_machines == direct.critical_machines
        assert batch.best().period == direct.period

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_equivalence_on_random_seeds(self, seed):
        rng = np.random.default_rng(seed)
        instance = _random_instance(rng, tree=bool(seed % 3 == 0))
        assignments = rng.integers(0, instance.num_machines, size=(3, instance.num_tasks))
        _assert_batch_matches_scalar(instance, assignments)

    def test_rejects_wrong_shapes_and_indices(self):
        rng = np.random.default_rng(10)
        instance = _random_instance(rng)
        with pytest.raises(InvalidMappingError):
            evaluate_batch(instance, np.zeros((2, instance.num_tasks + 1), dtype=int))
        bad = np.zeros((1, instance.num_tasks), dtype=int)
        bad[0, 0] = instance.num_machines
        with pytest.raises(InvalidMappingError):
            evaluate_batch(instance, bad)
        with pytest.raises(InvalidMappingError):
            as_assignment_array(
                np.zeros((2, 2, 2), dtype=int), num_tasks=2, num_machines=2
            )


class TestInstanceStack:
    def _stacked(self, rng, count=6):
        base = _random_instance(rng)
        app = base.application
        instances = []
        for _ in range(count):
            per_type_w = rng.uniform(1.0, 1000.0, size=(app.num_types, base.num_machines))
            w = per_type_w[np.asarray(list(app.types)), :]
            f = rng.uniform(0.0, 0.4, size=(app.num_tasks, base.num_machines))
            instances.append(ProblemInstance(app, Platform(w), FailureModel(f)))
        return instances

    def test_stack_matches_per_instance_scalar_evaluation(self):
        rng = np.random.default_rng(11)
        instances = self._stacked(rng)
        stack = InstanceStack.from_instances(instances)
        assignments = rng.integers(
            0, stack.num_machines, size=(len(instances), stack.num_tasks)
        )
        result = stack.evaluate(assignments)
        for s, inst in enumerate(instances):
            scalar = evaluate(inst, Mapping(assignments[s], inst.num_machines))
            assert result.periods[s] == scalar.period
            assert np.array_equal(
                result.machine_periods[s], np.array(scalar.machine_periods)
            )
        assert np.array_equal(stack.periods(assignments), result.periods)

    def test_single_mapping_broadcasts_over_the_stack(self):
        rng = np.random.default_rng(12)
        instances = self._stacked(rng)
        stack = InstanceStack.from_instances(instances)
        vec = rng.integers(0, stack.num_machines, size=stack.num_tasks)
        result = stack.evaluate(vec)
        for s, inst in enumerate(instances):
            assert result.periods[s] == evaluate(inst, Mapping(vec, inst.num_machines)).period

    def test_materialised_instance_round_trips(self):
        rng = np.random.default_rng(13)
        instances = self._stacked(rng, count=3)
        stack = InstanceStack.from_instances(instances)
        rebuilt = stack.instance(1)
        vec = rng.integers(0, stack.num_machines, size=stack.num_tasks)
        mapping = Mapping(vec, stack.num_machines)
        assert evaluate(rebuilt, mapping).period == evaluate(instances[1], mapping).period

    def test_rejects_structurally_different_instances(self):
        rng = np.random.default_rng(14)
        a = _random_instance(rng)
        b = _random_instance(rng)
        while (
            tuple(b.application.types) == tuple(a.application.types)
            and b.num_machines == a.num_machines
        ):
            b = _random_instance(rng)
        with pytest.raises(InvalidInstanceError):
            InstanceStack.from_instances([a, b])
        with pytest.raises(InvalidInstanceError):
            InstanceStack.from_instances([])


class TestMappingEvaluator:
    def test_initial_state_matches_scalar_evaluate(self):
        rng = np.random.default_rng(20)
        instance = _random_instance(rng)
        vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
        ev = MappingEvaluator(instance, Mapping(vec, instance.num_machines))
        scalar = evaluate(instance, Mapping(vec, instance.num_machines))
        assert ev.period == scalar.period
        assert tuple(ev.machine_periods) == scalar.machine_periods
        assert tuple(ev.expected_products) == scalar.expected_products
        assert ev.critical_machines() == scalar.critical_machines
        assert ev.evaluation().period == scalar.period

    def test_moves_track_fresh_evaluation(self):
        rng = np.random.default_rng(21)
        for trial in range(8):
            instance = _random_instance(rng, tree=trial % 2 == 0)
            if instance.num_machines < 2:
                continue
            vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
            ev = MappingEvaluator(instance, vec)
            for _ in range(30):
                task = int(rng.integers(0, instance.num_tasks))
                machine = int(rng.integers(0, instance.num_machines))
                predicted = ev.candidate_period(task, machine)
                vector = ev.candidate_periods(task)
                new_period = ev.move(task, machine)
                truth = evaluate(instance, ev.mapping).period
                assert predicted == pytest.approx(truth, rel=1e-9)
                assert vector[machine] == pytest.approx(truth, rel=1e-9)
                assert new_period == pytest.approx(truth, rel=1e-9)

    def test_candidate_periods_agrees_with_candidate_period(self):
        rng = np.random.default_rng(22)
        instance = _random_instance(rng)
        vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
        ev = MappingEvaluator(instance, vec)
        for task in range(instance.num_tasks):
            vector = ev.candidate_periods(task)
            for machine in range(instance.num_machines):
                assert vector[machine] == pytest.approx(
                    ev.candidate_period(task, machine), rel=1e-12
                )

    def test_noop_move_keeps_period(self):
        rng = np.random.default_rng(23)
        instance = _random_instance(rng)
        vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
        ev = MappingEvaluator(instance, vec)
        before = ev.period
        assert ev.move(0, int(vec[0])) == before
        assert ev.candidate_period(0, int(vec[0])) == before

    def test_refresh_resyncs_exactly(self):
        rng = np.random.default_rng(24)
        instance = _random_instance(rng)
        if instance.num_machines < 2:
            instance = _random_instance(np.random.default_rng(25))
        vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
        ev = MappingEvaluator(instance, vec)
        for _ in range(50):
            ev.move(
                int(rng.integers(0, instance.num_tasks)),
                int(rng.integers(0, instance.num_machines)),
            )
        ev.refresh()
        scalar = evaluate(instance, ev.mapping)
        assert ev.period == scalar.period
        assert tuple(ev.machine_periods) == scalar.machine_periods

    def test_rejects_invalid_arguments(self):
        rng = np.random.default_rng(26)
        instance = _random_instance(rng)
        vec = rng.integers(0, instance.num_machines, size=instance.num_tasks)
        ev = MappingEvaluator(instance, vec)
        with pytest.raises(InvalidMappingError):
            ev.move(instance.num_tasks, 0)
        with pytest.raises(InvalidMappingError):
            ev.move(0, instance.num_machines)
        with pytest.raises(InvalidMappingError):
            MappingEvaluator(instance, np.zeros(instance.num_tasks + 1, dtype=int))
