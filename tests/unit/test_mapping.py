"""Unit tests for repro.core.mapping."""

from __future__ import annotations

import pytest

from repro.core.mapping import Mapping, MappingRule
from repro.exceptions import InvalidMappingError, MappingRuleViolation


class TestMappingRule:
    def test_coerce_from_string(self):
        assert MappingRule.coerce("one-to-one") is MappingRule.ONE_TO_ONE
        assert MappingRule.coerce("specialized") is MappingRule.SPECIALIZED
        assert MappingRule.coerce(MappingRule.GENERAL) is MappingRule.GENERAL

    def test_coerce_unknown(self):
        with pytest.raises(InvalidMappingError):
            MappingRule.coerce("bogus")

    def test_str(self):
        assert str(MappingRule.SPECIALIZED) == "specialized"


class TestMappingBasics:
    def test_construction_and_access(self):
        m = Mapping([0, 2, 1], 3)
        assert len(m) == 3
        assert m[1] == 2
        assert m.machine_of(2) == 1
        assert list(m) == [0, 2, 1]
        assert m.num_machines == 3

    def test_rejects_invalid_indices(self):
        with pytest.raises(InvalidMappingError):
            Mapping([0, 3], 3)
        with pytest.raises(InvalidMappingError):
            Mapping([0, -1], 3)
        with pytest.raises(InvalidMappingError):
            Mapping([], 3)
        with pytest.raises(InvalidMappingError):
            Mapping([0], 0)

    def test_equality_and_hash(self):
        assert Mapping([0, 1], 2) == Mapping([0, 1], 2)
        assert Mapping([0, 1], 2) != Mapping([0, 1], 3)
        assert Mapping([0, 1], 2) != Mapping([1, 0], 2)
        assert len({Mapping([0, 1], 2), Mapping([0, 1], 2)}) == 1

    def test_replace_returns_new_mapping(self):
        original = Mapping([0, 0], 2)
        updated = original.replace(1, 1)
        assert list(original) == [0, 0]
        assert list(updated) == [0, 1]

    def test_identity(self):
        m = Mapping.identity(3)
        assert list(m) == [0, 1, 2]
        m2 = Mapping.identity(2, num_machines=5)
        assert m2.num_machines == 5
        with pytest.raises(InvalidMappingError):
            Mapping.identity(4, num_machines=2)

    def test_array_read_only(self):
        m = Mapping([0, 1], 2)
        with pytest.raises(ValueError):
            m.as_array[0] = 1


class TestStructureQueries:
    def test_tasks_on_and_loads(self):
        m = Mapping([0, 1, 0, 1, 0], 3)
        assert m.tasks_on(0) == [0, 2, 4]
        assert m.tasks_on(2) == []
        assert m.machine_loads() == {0: [0, 2, 4], 1: [1, 3]}
        assert m.used_machines() == [0, 1]

    def test_one_to_one_check(self):
        assert Mapping([0, 1, 2], 3).satisfies_one_to_one()
        assert not Mapping([0, 1, 0], 3).satisfies_one_to_one()

    def test_specialized_check(self):
        types = [0, 1, 0, 1]
        assert Mapping([0, 1, 0, 1], 2).satisfies_specialized(types)
        assert not Mapping([0, 0, 0, 0], 2).satisfies_specialized(types)
        # One-to-one is always specialized.
        assert Mapping([0, 1, 2, 3], 4).satisfies_specialized(types)

    def test_specialized_check_length_mismatch(self):
        with pytest.raises(InvalidMappingError):
            Mapping([0, 1], 2).satisfies_specialized([0])

    def test_machine_specializations(self):
        m = Mapping([0, 1, 0], 2)
        spec = m.machine_specializations([0, 1, 0])
        assert spec == {0: {0}, 1: {1}}
        general = Mapping([0, 0], 1).machine_specializations([0, 1])
        assert general == {0: {0, 1}}

    def test_rule_classification(self):
        types = [0, 1, 0]
        assert Mapping([0, 1, 2], 3).rule(types) is MappingRule.ONE_TO_ONE
        assert Mapping([0, 1, 0], 3).rule(types) is MappingRule.SPECIALIZED
        assert Mapping([0, 0, 0], 3).rule(types) is MappingRule.GENERAL


class TestValidateAgainstInstance:
    def test_validate_dimensions(self, small_instance):
        good = Mapping([0, 1, 0, 1], 3)
        good.validate(small_instance)
        with pytest.raises(InvalidMappingError):
            Mapping([0, 1, 0], 3).validate(small_instance)
        with pytest.raises(InvalidMappingError):
            Mapping([0, 1, 0, 1], 2).validate(small_instance)

    def test_validate_one_to_one_rule(self, small_instance):
        with pytest.raises(MappingRuleViolation):
            Mapping([0, 1, 0, 1], 3).validate(small_instance, MappingRule.ONE_TO_ONE)

    def test_validate_specialized_rule(self, small_instance):
        # Types are [0, 1, 0, 1]; machine 0 would mix types 0 and 1.
        with pytest.raises(MappingRuleViolation):
            Mapping([0, 0, 1, 1], 3).validate(small_instance, MappingRule.SPECIALIZED)
        Mapping([0, 1, 0, 1], 3).validate(small_instance, "specialized")

    def test_validate_general_always_ok(self, small_instance):
        Mapping([0, 0, 0, 0], 3).validate(small_instance, MappingRule.GENERAL)

    def test_round_trip_serialization(self):
        m = Mapping([0, 2, 1], 4)
        clone = Mapping.from_dict(m.to_dict())
        assert clone == m
