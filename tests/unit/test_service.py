"""Unit tests for the solve service: requests, cache, batcher, server."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.exceptions import ExperimentError, ServiceOverloadedError
from repro.heuristics import available_heuristics
from repro.heuristics.base import batch_solve_min_repetitions

# The micro-batcher's crossover for the heuristic used by make_payload.
BATCH_THRESHOLD = batch_solve_min_repetitions("H4w")
from repro.service import (
    LatencyReservoir,
    MicroBatcher,
    ServiceStats,
    SolveCache,
    SolveCacheStore,
    SolveService,
    SolveWorkerPool,
    direct_response,
    get_json,
    normalize_request,
    service_stats,
    solve_remote,
)


def make_payload(**overrides) -> dict:
    payload = {
        "heuristic": "H4w",
        "application": {"tasks": 10, "types": 3},
        "platform": {"machines": 5},
        "options": {"seed": 0, "repetition": 0},
    }
    for key, value in overrides.items():
        if key in ("tasks", "types"):
            payload["application"][key] = value
        elif key in ("machines", "w_range", "f_range", "task_dependent_failures"):
            payload["platform"][key] = value
        elif key in ("seed", "repetition", "deadline_ms"):
            payload["options"][key] = value
        else:
            payload[key] = value
    return payload


def run(coro):
    return asyncio.run(coro)


class TestNormalizeRequest:
    def test_defaults_fill_in(self):
        request = normalize_request(
            {
                "heuristic": "H2",
                "application": {"tasks": 6, "types": 2},
                "platform": {"machines": 3},
            }
        )
        assert request.seed == 0
        assert request.repetition == 0
        assert request.num_tasks == 6
        assert request.scenario.num_machines == 3

    def test_heuristic_case_is_canonicalized(self):
        lower = normalize_request(make_payload(heuristic="h4w"))
        upper = normalize_request(make_payload(heuristic="H4W"))
        assert lower.heuristic == upper.heuristic == "H4w"
        assert lower.key == upper.key

    def test_key_covers_every_response_field(self):
        base = normalize_request(make_payload())
        assert normalize_request(make_payload()).key == base.key
        for variant in (
            make_payload(seed=1),
            make_payload(repetition=1),
            make_payload(tasks=11),
            make_payload(types=2),
            make_payload(machines=6),
            make_payload(heuristic="H2"),
            make_payload(w_range=[5.0, 50.0]),
            make_payload(f_range=[0.0, 0.1]),
            make_payload(task_dependent_failures=True),
        ):
            assert normalize_request(variant).key != base.key, variant

    def test_signature_groups_structurally_compatible_requests(self):
        base = normalize_request(make_payload())
        assert normalize_request(make_payload(seed=5)).signature == base.signature
        assert normalize_request(make_payload(types=2)).signature == base.signature
        assert normalize_request(make_payload(tasks=12)).signature != base.signature
        assert normalize_request(make_payload(machines=6)).signature != base.signature
        assert normalize_request(make_payload(heuristic="H2")).signature != base.signature

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            make_payload(heuristic="NoSuchHeuristic"),
            make_payload(typo="yes"),
            {**make_payload(), "application": {"tasks": 10, "types": 3, "junk": 1}},
            {**make_payload(), "options": {"seed": 0, "junk": 1}},
            make_payload(tasks=0),
            make_payload(types=11),  # p > n
            make_payload(machines=2),  # p > m
            make_payload(repetition=-1),
            make_payload(seed=-1),
            make_payload(seed="zero"),
            make_payload(deadline_ms=0),
            make_payload(deadline_ms=-5),
            make_payload(deadline_ms=True),
            make_payload(deadline_ms="fast"),
        ],
    )
    def test_bad_payloads_are_rejected(self, payload):
        with pytest.raises(ExperimentError):
            normalize_request(payload)

    def test_deadline_is_parsed_but_excluded_from_the_key(self):
        plain = normalize_request(make_payload())
        deadlined = normalize_request(make_payload(deadline_ms=250))
        assert plain.deadline_ms is None
        assert deadlined.deadline_ms == 250.0
        # A scheduling knob only: a retry with a different deadline must
        # hit the cache entry of the first solve.
        assert deadlined.key == plain.key

    def test_request_must_be_an_object(self):
        with pytest.raises(ExperimentError):
            normalize_request(["heuristic", "H4w"])

    def test_direct_response_is_deterministic(self):
        request = normalize_request(make_payload(heuristic="H1", seed=9))
        first = direct_response(request)
        second = direct_response(request)
        assert first == second
        assert len(first["assignment"]) == 10
        assert first["period"] > 0
        assert first["throughput"] == 1.0 / first["period"]


class TestSolveCache:
    def test_memory_tier_hit_and_eviction(self):
        cache = SolveCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == ({"v": 1}, "memory")
        cache.put("c", {"v": 3})  # evicts "b" (least recently used)
        assert cache.get("b") == (None, None)
        assert cache.get("a")[1] == "memory"
        assert cache.stats.evictions == 1
        assert cache.stats.memory_hits == 2
        assert cache.stats.misses == 1

    def test_persistent_tier_survives_reopen_and_promotes(self, tmp_path):
        cache = SolveCache.open(tmp_path / "cache")
        cache.put("k", {"v": 42})
        cache.close()

        reopened = SolveCache.open(tmp_path / "cache")
        response, tier = reopened.get("k")
        assert response == {"v": 42}
        assert tier == "store"
        # Promoted into memory: the second lookup is a memory hit.
        assert reopened.get("k") == ({"v": 42}, "memory")
        reopened.close()

    def test_store_tier_rebuilds_a_stale_index(self, tmp_path):
        store = SolveCacheStore(tmp_path / "cache")
        store.put("k1", {"v": 1})
        store.put("k2", {"v": 2})
        store.close()
        index_path = tmp_path / "cache" / "index.json"
        raw = json.loads(index_path.read_text())
        raw["solve"] = {key: offset + 7 for key, offset in raw["solve"].items()}
        index_path.write_text(json.dumps(raw))

        reopened = SolveCacheStore(tmp_path / "cache")
        assert reopened.get("k2") == {"v": 2}
        assert reopened.get("k1") == {"v": 1}


class TestMicroBatcher:
    def test_window_flush_groups_concurrent_requests(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            requests = [
                normalize_request(make_payload(seed=seed)) for seed in range(4)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return batcher.stats, requests, responses

        stats, requests, responses = run(scenario())
        # All four arrived within the window: one flush, one group of 4.
        assert stats.flushes == 1
        assert stats.max_group == 4
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]

    def test_max_batch_flushes_immediately(self):
        async def scenario():
            batcher = MicroBatcher(window=60.0, max_batch=2)
            requests = [
                normalize_request(make_payload(seed=seed)) for seed in range(4)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return batcher.stats, responses

        # A one-minute window would hang the test if the size trigger failed.
        stats, responses = run(asyncio.wait_for(scenario(), timeout=10.0))
        assert stats.flushes == 2
        assert stats.max_group == 2
        assert len(responses) == 4

    def test_signature_grouping_keeps_incompatible_requests_apart(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            requests = [
                normalize_request(make_payload(seed=seed)) for seed in range(3)
            ] + [
                normalize_request(make_payload(tasks=12, seed=seed))
                for seed in range(3)
            ] + [
                normalize_request(make_payload(heuristic="H2", seed=seed))
                for seed in range(3)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return batcher.stats, requests, responses

        stats, requests, responses = run(scenario())
        assert stats.flushes == 3  # one per distinct signature
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]

    def test_sub_threshold_groups_fall_back_per_instance(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)
            requests = [
                normalize_request(make_payload(seed=seed))
                for seed in range(BATCH_THRESHOLD - 1)
            ]
            return await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            ), batcher.stats

        responses, stats = run(scenario())
        assert stats.batched_requests == 0
        assert stats.fallback_requests == len(responses)
        assert all(response["batched"] is False for response in responses)

    def test_threshold_deep_groups_take_the_batch_kernel(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            requests = [
                normalize_request(make_payload(seed=seed))
                for seed in range(BATCH_THRESHOLD)
            ]
            return await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            ), batcher.stats

        responses, stats = run(scenario())
        assert stats.batched_requests == len(responses)
        assert all(response["batched"] is True for response in responses)

    def test_identical_requests_coalesce_into_one_solve(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            request = normalize_request(make_payload(seed=3))
            responses = await asyncio.gather(
                *(batcher.submit(request) for _ in range(5))
            )
            return batcher.stats, responses

        stats, responses = run(scenario())
        assert stats.coalesced == 4
        assert stats.max_group == 1  # one unique request actually solved
        assert all(response == responses[0] for response in responses)

    def test_identical_request_joins_a_solve_already_in_flight(self):
        async def scenario():
            # window=0: the first request's group flushes on the next
            # loop tick, so by the time the duplicate arrives the solve
            # is running on the executor — no pending group, no cache.
            batcher = MicroBatcher(window=0.0, cache=None)
            solving = threading.Event()
            release = threading.Event()
            inner_solve = batcher._solve

            def gated_solve(requests):
                solving.set()
                assert release.wait(timeout=10.0)
                return inner_solve(requests)

            batcher._solve = gated_solve
            request = normalize_request(make_payload(seed=3))
            first = asyncio.create_task(batcher.submit(request))
            while not solving.is_set():  # the solve is now mid-executor
                await asyncio.sleep(0.001)
            second = asyncio.create_task(batcher.submit(request))
            await asyncio.sleep(0.01)
            release.set()
            return batcher.stats, await first, await second

        stats, first, second = run(scenario())
        assert stats.coalesced == 1
        assert stats.flushes == 1  # the duplicate never formed a group
        assert first == second

    def test_cache_hits_skip_the_solver(self):
        async def scenario():
            batcher = MicroBatcher(window=0.0, cache=SolveCache(capacity=16))
            request = normalize_request(make_payload(seed=1))
            first = await batcher.submit(request)
            second = await batcher.submit(request)
            return batcher.stats, first, second

        stats, first, second = run(scenario())
        assert first["cached"] is False
        assert second["cached"] == "memory"
        assert stats.flushes == 1  # the second submit never reached a group
        assert {k: v for k, v in second.items() if k != "cached"} == {
            k: v for k, v in first.items() if k != "cached"
        }

    @pytest.mark.parametrize("heuristic", available_heuristics())
    def test_batched_service_solves_match_direct_solves(self, heuristic):
        """Bit-for-bit equivalence, batched and fallback, every heuristic."""

        async def scenario():
            batcher = MicroBatcher(window=0.05, batch=True)
            requests = [
                normalize_request(
                    make_payload(heuristic=heuristic, seed=seed)
                )
                for seed in range(BATCH_THRESHOLD)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return requests, responses

        requests, responses = run(scenario())
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]
            assert response["throughput"] == reference["throughput"]
            assert response["key"] == reference["key"]


class TestSolveService:
    def request_in_executor(self, call):
        return asyncio.get_running_loop().run_in_executor(None, call)

    def test_http_solve_stats_health_roundtrip(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            url = service.url
            payload = make_payload(seed=2)
            try:
                response = await self.request_in_executor(
                    lambda: solve_remote(url, payload)
                )
                duplicate = await self.request_in_executor(
                    lambda: solve_remote(url, payload)
                )
                stats = await self.request_in_executor(lambda: service_stats(url))
                health = await self.request_in_executor(
                    lambda: get_json(url + "/healthz")
                )
            finally:
                await service.stop()
            return payload, response, duplicate, stats, health

        payload, response, duplicate, stats, health = run(scenario())
        reference = direct_response(normalize_request(payload))
        assert response["assignment"] == reference["assignment"]
        assert response["period"] == reference["period"]
        assert response["cached"] is False
        assert duplicate["cached"] == "memory"
        assert stats["service"]["solved"] == 2
        assert stats["cache"]["hits"] == 1
        assert health["status"] == "ok"

    def test_http_errors_are_json_not_disconnects(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            url = service.url
            try:
                with pytest.raises(ExperimentError, match="unknown heuristic"):
                    await self.request_in_executor(
                        lambda: solve_remote(
                            url, make_payload(heuristic="NoSuchHeuristic")
                        )
                    )
                with pytest.raises(ExperimentError, match="no such endpoint"):
                    await self.request_in_executor(
                        lambda: get_json(url + "/nowhere")
                    )
                stats = await self.request_in_executor(lambda: service_stats(url))
            finally:
                await service.stop()
            return stats

        stats = run(scenario())
        assert stats["service"]["errors"] == 2
        assert stats["service"]["solved"] == 0

    def test_malformed_content_length_does_not_kill_the_server(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(b"POST /solve HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
                await writer.drain()
                await reader.read()  # the bad connection is dropped...
                writer.close()
                # ...but the server survives and keeps answering.
                health = await self.request_in_executor(
                    lambda: get_json(service.url + "/healthz")
                )
            finally:
                await service.stop()
            return health

        assert run(scenario())["status"] == "ok"

    def test_solver_crash_returns_500_json(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)

            async def boom(request):
                raise RuntimeError("kernel exploded")

            service.batcher.submit = boom
            await service.start()
            url = service.url
            try:
                with pytest.raises(ExperimentError, match="kernel exploded"):
                    await self.request_in_executor(
                        lambda: solve_remote(url, make_payload())
                    )
                stats = await self.request_in_executor(lambda: service_stats(url))
            finally:
                await service.stop()
            return stats

        stats = run(scenario())
        assert stats["service"]["errors"] == 1
        assert stats["service"]["solved"] == 0

    def test_persistent_cache_warms_a_restarted_service(self, tmp_path):
        cache_dir = str(tmp_path / "solve-cache")
        payload = make_payload(seed=11)

        async def round_one():
            service = SolveService(port=0, window=0.001, cache_dir=cache_dir)
            await service.start()
            try:
                return await self.request_in_executor(
                    lambda: solve_remote(service.url, payload)
                )
            finally:
                await service.stop()

        async def round_two():
            service = SolveService(port=0, window=0.001, cache_dir=cache_dir)
            await service.start()
            try:
                return await self.request_in_executor(
                    lambda: solve_remote(service.url, payload)
                )
            finally:
                await service.stop()

        first = run(round_one())
        second = run(round_two())
        assert first["cached"] is False
        assert second["cached"] == "store"
        assert {k: v for k, v in second.items() if k != "cached"} == {
            k: v for k, v in first.items() if k != "cached"
        }


def strip_markers(response: dict) -> dict:
    """A response body without its scheduling markers (cached/batched)."""
    return {k: v for k, v in response.items() if k not in ("cached", "batched")}


class TestSolveWorkerPool:
    def test_pool_solves_match_direct_solves(self):
        """Bit-for-bit equivalence through worker processes, both paths."""

        async def scenario():
            with SolveWorkerPool(2) as pool:
                batcher = MicroBatcher(window=0.05, pool=pool)
                requests = [
                    normalize_request(make_payload(seed=seed))
                    for seed in range(BATCH_THRESHOLD)
                ] + [
                    normalize_request(
                        make_payload(heuristic="H1", tasks=8, seed=seed)
                    )
                    for seed in range(3)
                ]
                responses = await asyncio.gather(
                    *(batcher.submit(request) for request in requests)
                )
                await batcher.aclose()
            return batcher.stats, requests, responses

        stats, requests, responses = run(scenario())
        # The deep H4w group took the batch kernel inside a worker, the
        # H1 group fell back per instance — both inside workers.
        assert stats.batched_requests == BATCH_THRESHOLD
        assert stats.fallback_requests == 3
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert strip_markers(response) == strip_markers(reference)

    def test_pool_is_warmed_at_construction(self):
        with SolveWorkerPool(2) as pool:
            assert len(pool.worker_pids()) == 2

    def test_pool_requires_at_least_one_worker(self):
        with pytest.raises(ValueError, match=">= 1 workers"):
            SolveWorkerPool(0)

    def test_http_roundtrip_through_the_worker_pool(self):
        async def scenario():
            service = SolveService(port=0, window=0.001, workers=2)
            await service.start()
            url = service.url
            payload = make_payload(seed=5)
            loop = asyncio.get_running_loop()
            try:
                response = await loop.run_in_executor(
                    None, lambda: solve_remote(url, payload)
                )
                stats = await loop.run_in_executor(
                    None, lambda: service_stats(url)
                )
            finally:
                await service.stop()
            return payload, response, stats

        payload, response, stats = run(scenario())
        reference = direct_response(normalize_request(payload))
        assert strip_markers(response) == strip_markers(reference)
        assert stats["workers"] == 2
        assert stats["service"]["solved"] == 1


class TestAdmissionControl:
    def test_distinct_requests_beyond_max_pending_are_shed(self):
        async def scenario():
            batcher = MicroBatcher(window=60.0, max_pending=2)
            first = asyncio.create_task(
                batcher.submit(normalize_request(make_payload(seed=41)))
            )
            second = asyncio.create_task(
                batcher.submit(normalize_request(make_payload(seed=42)))
            )
            while len(batcher._inflight) < 2:
                await asyncio.sleep(0.001)
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                await batcher.submit(normalize_request(make_payload(seed=43)))
            # A coalesced duplicate consumes no solve capacity: admitted.
            duplicate = asyncio.create_task(
                batcher.submit(normalize_request(make_payload(seed=41)))
            )
            await asyncio.sleep(0.01)
            assert not duplicate.done()
            await batcher.aclose()  # flushes the one-minute window now
            return batcher.stats, await first, await duplicate, await second

        stats, first, duplicate, second = run(
            asyncio.wait_for(scenario(), timeout=30.0)
        )
        assert stats.shed == 1
        assert stats.coalesced == 1
        assert first == duplicate
        assert second["key"] != first["key"]

    def test_cache_hits_are_admitted_even_when_full(self):
        async def scenario():
            cache = SolveCache(capacity=16)
            warmed = await MicroBatcher(window=0.0, cache=cache).submit(
                normalize_request(make_payload(seed=51))
            )
            batcher = MicroBatcher(window=60.0, cache=cache, max_pending=1)
            blocker = asyncio.create_task(
                batcher.submit(normalize_request(make_payload(seed=52)))
            )
            while not batcher._inflight:
                await asyncio.sleep(0.001)
            hit = await batcher.submit(normalize_request(make_payload(seed=51)))
            await batcher.aclose()
            await blocker
            return warmed, hit, batcher.stats

        warmed, hit, stats = run(asyncio.wait_for(scenario(), timeout=30.0))
        assert hit["cached"] == "memory"
        assert stats.shed == 0
        assert strip_markers(hit) == strip_markers(warmed)

    def test_http_load_shedding_answers_429_then_retries_succeed(self):
        shed_hints = []

        def ask(url, payload):
            while True:
                try:
                    return solve_remote(url, payload)
                except ServiceOverloadedError as exc:
                    # The server's Retry-After header reached the client.
                    assert exc.retry_after_seconds is not None
                    assert exc.retry_after_seconds >= 1
                    shed_hints.append(exc.retry_after_seconds)
                    time.sleep(0.2)

        async def scenario():
            service = SolveService(port=0, window=0.3, max_pending=1)
            await service.start()
            url = service.url
            payloads = [make_payload(seed=seed) for seed in range(60, 64)]
            loop = asyncio.get_running_loop()
            try:
                responses = await asyncio.gather(
                    *(
                        loop.run_in_executor(None, ask, url, payload)
                        for payload in payloads
                    )
                )
                stats = await loop.run_in_executor(
                    None, lambda: service_stats(url)
                )
            finally:
                await service.stop()
            return payloads, responses, stats

        payloads, responses, stats = run(
            asyncio.wait_for(scenario(), timeout=60.0)
        )
        # Four distinct concurrent requests against max_pending=1 with a
        # 300 ms window: at least the simultaneous arrivals were shed.
        assert len(shed_hints) >= 1
        assert stats["service"]["shed"] >= 1
        assert stats["batcher"]["shed"] >= 1
        assert stats["service"]["errors"] == 0
        # ...and every shed request, retried, got the bit-for-bit answer.
        for payload, response in zip(payloads, responses):
            reference = direct_response(normalize_request(payload))
            assert strip_markers(response) == strip_markers(reference)


class TestDeadlines:
    def test_deadline_exceeded_answers_504_and_still_caches(self):
        async def scenario():
            service = SolveService(port=0, window=5.0)
            await service.start()
            url = service.url
            payload = make_payload(seed=71, deadline_ms=100)
            loop = asyncio.get_running_loop()
            try:
                with pytest.raises(ExperimentError, match="deadline of 100 ms"):
                    await loop.run_in_executor(
                        None, lambda: solve_remote(url, payload)
                    )
                stats = await loop.run_in_executor(
                    None, lambda: service_stats(url)
                )
            finally:
                # stop() drains the batcher: the group the 504'd request
                # left behind still solves and lands in the cache.
                await service.stop()
            return service, payload, stats

        service, payload, stats = run(asyncio.wait_for(scenario(), timeout=30.0))
        assert stats["service"]["deadline_exceeded"] == 1
        assert stats["service"]["solved"] == 0
        assert stats["service"]["errors"] == 0
        request = normalize_request(payload)
        cached, tier = service.cache.get(request.key)
        assert tier == "memory"
        reference = direct_response(request)
        assert strip_markers(cached) == strip_markers(reference)

    def test_request_within_deadline_is_served_normally(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            payload = make_payload(seed=72, deadline_ms=20000)
            loop = asyncio.get_running_loop()
            try:
                return payload, await loop.run_in_executor(
                    None, lambda: solve_remote(service.url, payload)
                )
            finally:
                await service.stop()

        payload, response = run(asyncio.wait_for(scenario(), timeout=30.0))
        reference = direct_response(normalize_request(payload))
        assert strip_markers(response) == strip_markers(reference)


class TestWaiterLifecycle:
    def gate(self, batcher, result_exception=None):
        """Patch ``batcher._solve`` so the test controls when it runs."""
        solving = threading.Event()
        release = threading.Event()
        inner = batcher._solve

        def gated(requests):
            solving.set()
            assert release.wait(timeout=10.0)
            if result_exception is not None:
                raise result_exception
            return inner(requests)

        batcher._solve = gated
        return solving, release

    def test_cancelled_waiter_does_not_lose_the_group(self):
        """A client disconnect mid-solve: the group completes and caches."""

        async def scenario():
            cache = SolveCache(capacity=16)
            batcher = MicroBatcher(window=0.02, cache=cache)
            solving, release = self.gate(batcher)
            r0 = normalize_request(make_payload(seed=21))
            r1 = normalize_request(make_payload(seed=22))
            w0 = asyncio.create_task(batcher.submit(r0))
            w1 = asyncio.create_task(batcher.submit(r1))
            while not solving.is_set():  # both grouped, solve mid-executor
                await asyncio.sleep(0.001)
            w0.cancel()
            with pytest.raises(asyncio.CancelledError):
                await w0
            release.set()
            survivor = await w1
            await batcher.aclose()
            return cache, r0, r1, survivor

        cache, r0, r1, survivor = run(asyncio.wait_for(scenario(), timeout=30.0))
        assert strip_markers(survivor) == strip_markers(direct_response(r1))
        # The cancelled waiter's solve was not dropped: its response is
        # cached, so the disconnected client's retry is a cache hit.
        cached, tier = cache.get(r0.key)
        assert tier == "memory"
        assert strip_markers(cached) == strip_markers(direct_response(r0))

    def test_solver_failure_fans_out_past_cancelled_waiters(self):
        """A crash with one waiter gone still reaches the live waiters."""

        async def scenario():
            batcher = MicroBatcher(window=0.02)
            solving, release = self.gate(
                batcher, result_exception=RuntimeError("solver exploded")
            )
            w0 = asyncio.create_task(
                batcher.submit(normalize_request(make_payload(seed=31)))
            )
            w1 = asyncio.create_task(
                batcher.submit(normalize_request(make_payload(seed=32)))
            )
            while not solving.is_set():
                await asyncio.sleep(0.001)
            w0.cancel()
            release.set()
            results = await asyncio.gather(w0, w1, return_exceptions=True)
            await batcher.aclose()
            return batcher, results

        batcher, (first, second) = run(asyncio.wait_for(scenario(), timeout=30.0))
        assert isinstance(first, asyncio.CancelledError)
        assert isinstance(second, RuntimeError)
        assert str(second) == "solver exploded"
        # The failed group fully released its in-flight slots: nothing
        # leaks into admission control.
        assert batcher._inflight == {}

    def test_stop_drains_a_request_parked_in_the_window(self):
        """stop() answers in-flight clients instead of dropping them."""

        async def scenario():
            service = SolveService(port=0, window=10.0)
            await service.start()
            payload = make_payload(seed=81)
            url = service.url
            pending = asyncio.get_running_loop().run_in_executor(
                None, lambda: solve_remote(url, payload)
            )
            while not service.batcher._inflight:  # parked in the window
                await asyncio.sleep(0.005)
            await service.stop()
            return payload, await pending

        payload, response = run(asyncio.wait_for(scenario(), timeout=30.0))
        reference = direct_response(normalize_request(payload))
        assert strip_markers(response) == strip_markers(reference)


class TestCacheCompaction:
    def test_size_bound_evicts_oldest_and_compacts(self, tmp_path):
        store = SolveCacheStore(tmp_path / "cache", max_bytes=4096)
        blob = "x" * 80
        for i in range(200):
            store.put(f"key-{i:03d}", {"v": i, "blob": blob})
        assert store.size_bytes() <= 4096
        assert store.compactions > 0
        assert store.evictions > 0
        # Newest entry always survives; the oldest were evicted.
        assert store.get("key-199") == {"v": 199, "blob": blob}
        assert store.get("key-000") is None
        survivors = len(store)
        assert 0 < survivors < 200
        store.close()

        # The compacted log + index round-trip a reopen.
        reopened = SolveCacheStore(tmp_path / "cache", max_bytes=4096)
        assert len(reopened) == survivors
        assert reopened.get("key-199") == {"v": 199, "blob": blob}
        reopened.close()

    def test_compaction_reclaims_superseded_records(self, tmp_path):
        store = SolveCacheStore(tmp_path / "cache")
        for i in range(10):
            store.put("k", {"v": i})
        before = store.size_bytes()
        reclaimed = store.compact()
        assert reclaimed > 0
        assert store.size_bytes() == before - reclaimed
        assert store.get("k") == {"v": 9}
        assert len(store) == 1

    def test_cache_hits_survive_compaction_and_reopen(self, tmp_path):
        cache = SolveCache.open(tmp_path / "cache")
        request = normalize_request(make_payload(seed=91))
        response = direct_response(request)
        cache.put(request.key, response)
        cache.put(request.key, response)  # superseded duplicate record
        assert cache.store.compact() > 0
        cache.close()

        reopened = SolveCache.open(tmp_path / "cache")
        assert reopened.get(request.key) == (response, "store")
        payload = reopened.stats_payload()
        assert payload["store_entries"] == 1
        assert payload["hits"] == 1
        reopened.close()

    def test_stale_index_after_compaction_is_rebuilt(self, tmp_path):
        store = SolveCacheStore(tmp_path / "cache")
        store.put("k1", {"v": 1})
        store.put("k1", {"v": 11})
        store.put("k2", {"v": 2})
        store.compact()
        store.close()
        index_path = tmp_path / "cache" / "index.json"
        raw = json.loads(index_path.read_text())
        raw["solve"] = {key: offset + 3 for key, offset in raw["solve"].items()}
        index_path.write_text(json.dumps(raw))

        reopened = SolveCacheStore(tmp_path / "cache")
        assert reopened.get("k1") == {"v": 11}
        assert reopened.get("k2") == {"v": 2}

    def test_stats_payload_reports_store_footprint(self, tmp_path):
        cache = SolveCache.open(tmp_path / "cache", max_bytes=1 << 20)
        cache.put("k", {"v": 1})
        payload = cache.stats_payload()
        assert payload["store_entries"] == 1
        assert payload["store_bytes"] > 0
        assert payload["store_max_bytes"] == 1 << 20
        assert payload["store_evictions"] == 0
        assert payload["compactions"] == 0
        cache.close()


class TestLatencyReservoir:
    def test_nearest_rank_percentiles_are_exact(self):
        reservoir = LatencyReservoir()
        for ms in range(1, 101):
            reservoir.add(ms / 1000.0)
        assert reservoir.percentile(0.50) == pytest.approx(0.050)
        assert reservoir.percentile(0.95) == pytest.approx(0.095)
        assert reservoir.percentile(0.99) == pytest.approx(0.099)

    def test_ring_buffer_keeps_only_the_most_recent_samples(self):
        reservoir = LatencyReservoir(size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            reservoir.add(value)
        # 1.0 and 2.0 were overwritten: the window is {3, 4, 5, 6}.
        assert reservoir.percentile(0.25) == 3.0
        assert reservoir.percentile(1.0) == 6.0

    def test_empty_reservoir_reports_zero(self):
        assert LatencyReservoir().percentile(0.5) == 0.0


class TestServiceStatsClock:
    def test_uptime_is_monotonic_and_start_is_wall_clock(self):
        stats = ServiceStats()
        stats.record(0.010)
        payload = stats.as_dict()
        assert payload["uptime_seconds"] >= 0
        assert abs(payload["started_at_unix"] - time.time()) < 60.0
        assert payload["solved"] == 1
        assert payload["latency_mean_ms"] == 10.0
        assert payload["latency_p50_ms"] == 10.0
        assert payload["latency_p95_ms"] == 10.0
        assert payload["latency_p99_ms"] == 10.0
        assert payload["shed"] == 0
        assert payload["deadline_exceeded"] == 0
