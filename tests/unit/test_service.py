"""Unit tests for the solve service: requests, cache, batcher, server."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.exceptions import ExperimentError
from repro.heuristics import available_heuristics
from repro.heuristics.base import BATCH_SOLVE_MIN_REPETITIONS
from repro.service import (
    MicroBatcher,
    SolveCache,
    SolveCacheStore,
    SolveService,
    direct_response,
    get_json,
    normalize_request,
    service_stats,
    solve_remote,
)


def make_payload(**overrides) -> dict:
    payload = {
        "heuristic": "H4w",
        "application": {"tasks": 10, "types": 3},
        "platform": {"machines": 5},
        "options": {"seed": 0, "repetition": 0},
    }
    for key, value in overrides.items():
        if key in ("tasks", "types"):
            payload["application"][key] = value
        elif key in ("machines", "w_range", "f_range", "task_dependent_failures"):
            payload["platform"][key] = value
        elif key in ("seed", "repetition"):
            payload["options"][key] = value
        else:
            payload[key] = value
    return payload


def run(coro):
    return asyncio.run(coro)


class TestNormalizeRequest:
    def test_defaults_fill_in(self):
        request = normalize_request(
            {
                "heuristic": "H2",
                "application": {"tasks": 6, "types": 2},
                "platform": {"machines": 3},
            }
        )
        assert request.seed == 0
        assert request.repetition == 0
        assert request.num_tasks == 6
        assert request.scenario.num_machines == 3

    def test_heuristic_case_is_canonicalized(self):
        lower = normalize_request(make_payload(heuristic="h4w"))
        upper = normalize_request(make_payload(heuristic="H4W"))
        assert lower.heuristic == upper.heuristic == "H4w"
        assert lower.key == upper.key

    def test_key_covers_every_response_field(self):
        base = normalize_request(make_payload())
        assert normalize_request(make_payload()).key == base.key
        for variant in (
            make_payload(seed=1),
            make_payload(repetition=1),
            make_payload(tasks=11),
            make_payload(types=2),
            make_payload(machines=6),
            make_payload(heuristic="H2"),
            make_payload(w_range=[5.0, 50.0]),
            make_payload(f_range=[0.0, 0.1]),
            make_payload(task_dependent_failures=True),
        ):
            assert normalize_request(variant).key != base.key, variant

    def test_signature_groups_structurally_compatible_requests(self):
        base = normalize_request(make_payload())
        assert normalize_request(make_payload(seed=5)).signature == base.signature
        assert normalize_request(make_payload(types=2)).signature == base.signature
        assert normalize_request(make_payload(tasks=12)).signature != base.signature
        assert normalize_request(make_payload(machines=6)).signature != base.signature
        assert normalize_request(make_payload(heuristic="H2")).signature != base.signature

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            make_payload(heuristic="NoSuchHeuristic"),
            make_payload(typo="yes"),
            {**make_payload(), "application": {"tasks": 10, "types": 3, "junk": 1}},
            {**make_payload(), "options": {"seed": 0, "junk": 1}},
            make_payload(tasks=0),
            make_payload(types=11),  # p > n
            make_payload(machines=2),  # p > m
            make_payload(repetition=-1),
            make_payload(seed=-1),
            make_payload(seed="zero"),
        ],
    )
    def test_bad_payloads_are_rejected(self, payload):
        with pytest.raises(ExperimentError):
            normalize_request(payload)

    def test_request_must_be_an_object(self):
        with pytest.raises(ExperimentError):
            normalize_request(["heuristic", "H4w"])

    def test_direct_response_is_deterministic(self):
        request = normalize_request(make_payload(heuristic="H1", seed=9))
        first = direct_response(request)
        second = direct_response(request)
        assert first == second
        assert len(first["assignment"]) == 10
        assert first["period"] > 0
        assert first["throughput"] == 1.0 / first["period"]


class TestSolveCache:
    def test_memory_tier_hit_and_eviction(self):
        cache = SolveCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == ({"v": 1}, "memory")
        cache.put("c", {"v": 3})  # evicts "b" (least recently used)
        assert cache.get("b") == (None, None)
        assert cache.get("a")[1] == "memory"
        assert cache.stats.evictions == 1
        assert cache.stats.memory_hits == 2
        assert cache.stats.misses == 1

    def test_persistent_tier_survives_reopen_and_promotes(self, tmp_path):
        cache = SolveCache.open(tmp_path / "cache")
        cache.put("k", {"v": 42})
        cache.close()

        reopened = SolveCache.open(tmp_path / "cache")
        response, tier = reopened.get("k")
        assert response == {"v": 42}
        assert tier == "store"
        # Promoted into memory: the second lookup is a memory hit.
        assert reopened.get("k") == ({"v": 42}, "memory")
        reopened.close()

    def test_store_tier_rebuilds_a_stale_index(self, tmp_path):
        store = SolveCacheStore(tmp_path / "cache")
        store.put("k1", {"v": 1})
        store.put("k2", {"v": 2})
        store.close()
        index_path = tmp_path / "cache" / "index.json"
        raw = json.loads(index_path.read_text())
        raw["solve"] = {key: offset + 7 for key, offset in raw["solve"].items()}
        index_path.write_text(json.dumps(raw))

        reopened = SolveCacheStore(tmp_path / "cache")
        assert reopened.get("k2") == {"v": 2}
        assert reopened.get("k1") == {"v": 1}


class TestMicroBatcher:
    def test_window_flush_groups_concurrent_requests(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            requests = [
                normalize_request(make_payload(seed=seed)) for seed in range(4)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return batcher.stats, requests, responses

        stats, requests, responses = run(scenario())
        # All four arrived within the window: one flush, one group of 4.
        assert stats.flushes == 1
        assert stats.max_group == 4
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]

    def test_max_batch_flushes_immediately(self):
        async def scenario():
            batcher = MicroBatcher(window=60.0, max_batch=2)
            requests = [
                normalize_request(make_payload(seed=seed)) for seed in range(4)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return batcher.stats, responses

        # A one-minute window would hang the test if the size trigger failed.
        stats, responses = run(asyncio.wait_for(scenario(), timeout=10.0))
        assert stats.flushes == 2
        assert stats.max_group == 2
        assert len(responses) == 4

    def test_signature_grouping_keeps_incompatible_requests_apart(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            requests = [
                normalize_request(make_payload(seed=seed)) for seed in range(3)
            ] + [
                normalize_request(make_payload(tasks=12, seed=seed))
                for seed in range(3)
            ] + [
                normalize_request(make_payload(heuristic="H2", seed=seed))
                for seed in range(3)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return batcher.stats, requests, responses

        stats, requests, responses = run(scenario())
        assert stats.flushes == 3  # one per distinct signature
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]

    def test_sub_threshold_groups_fall_back_per_instance(self):
        async def scenario():
            batcher = MicroBatcher(window=0.02)
            requests = [
                normalize_request(make_payload(seed=seed))
                for seed in range(BATCH_SOLVE_MIN_REPETITIONS - 1)
            ]
            return await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            ), batcher.stats

        responses, stats = run(scenario())
        assert stats.batched_requests == 0
        assert stats.fallback_requests == len(responses)
        assert all(response["batched"] is False for response in responses)

    def test_threshold_deep_groups_take_the_batch_kernel(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            requests = [
                normalize_request(make_payload(seed=seed))
                for seed in range(BATCH_SOLVE_MIN_REPETITIONS)
            ]
            return await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            ), batcher.stats

        responses, stats = run(scenario())
        assert stats.batched_requests == len(responses)
        assert all(response["batched"] is True for response in responses)

    def test_identical_requests_coalesce_into_one_solve(self):
        async def scenario():
            batcher = MicroBatcher(window=0.05)
            request = normalize_request(make_payload(seed=3))
            responses = await asyncio.gather(
                *(batcher.submit(request) for _ in range(5))
            )
            return batcher.stats, responses

        stats, responses = run(scenario())
        assert stats.coalesced == 4
        assert stats.max_group == 1  # one unique request actually solved
        assert all(response == responses[0] for response in responses)

    def test_identical_request_joins_a_solve_already_in_flight(self):
        async def scenario():
            # window=0: the first request's group flushes on the next
            # loop tick, so by the time the duplicate arrives the solve
            # is running on the executor — no pending group, no cache.
            batcher = MicroBatcher(window=0.0, cache=None)
            solving = threading.Event()
            release = threading.Event()
            inner_solve = batcher._solve

            def gated_solve(requests):
                solving.set()
                assert release.wait(timeout=10.0)
                return inner_solve(requests)

            batcher._solve = gated_solve
            request = normalize_request(make_payload(seed=3))
            first = asyncio.create_task(batcher.submit(request))
            while not solving.is_set():  # the solve is now mid-executor
                await asyncio.sleep(0.001)
            second = asyncio.create_task(batcher.submit(request))
            await asyncio.sleep(0.01)
            release.set()
            return batcher.stats, await first, await second

        stats, first, second = run(scenario())
        assert stats.coalesced == 1
        assert stats.flushes == 1  # the duplicate never formed a group
        assert first == second

    def test_cache_hits_skip_the_solver(self):
        async def scenario():
            batcher = MicroBatcher(window=0.0, cache=SolveCache(capacity=16))
            request = normalize_request(make_payload(seed=1))
            first = await batcher.submit(request)
            second = await batcher.submit(request)
            return batcher.stats, first, second

        stats, first, second = run(scenario())
        assert first["cached"] is False
        assert second["cached"] == "memory"
        assert stats.flushes == 1  # the second submit never reached a group
        assert {k: v for k, v in second.items() if k != "cached"} == {
            k: v for k, v in first.items() if k != "cached"
        }

    @pytest.mark.parametrize("heuristic", available_heuristics())
    def test_batched_service_solves_match_direct_solves(self, heuristic):
        """Bit-for-bit equivalence, batched and fallback, every heuristic."""

        async def scenario():
            batcher = MicroBatcher(window=0.05, batch=True)
            requests = [
                normalize_request(
                    make_payload(heuristic=heuristic, seed=seed)
                )
                for seed in range(BATCH_SOLVE_MIN_REPETITIONS)
            ]
            responses = await asyncio.gather(
                *(batcher.submit(request) for request in requests)
            )
            return requests, responses

        requests, responses = run(scenario())
        for request, response in zip(requests, responses):
            reference = direct_response(request)
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]
            assert response["throughput"] == reference["throughput"]
            assert response["key"] == reference["key"]


class TestSolveService:
    def request_in_executor(self, call):
        return asyncio.get_running_loop().run_in_executor(None, call)

    def test_http_solve_stats_health_roundtrip(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            url = service.url
            payload = make_payload(seed=2)
            try:
                response = await self.request_in_executor(
                    lambda: solve_remote(url, payload)
                )
                duplicate = await self.request_in_executor(
                    lambda: solve_remote(url, payload)
                )
                stats = await self.request_in_executor(lambda: service_stats(url))
                health = await self.request_in_executor(
                    lambda: get_json(url + "/healthz")
                )
            finally:
                await service.stop()
            return payload, response, duplicate, stats, health

        payload, response, duplicate, stats, health = run(scenario())
        reference = direct_response(normalize_request(payload))
        assert response["assignment"] == reference["assignment"]
        assert response["period"] == reference["period"]
        assert response["cached"] is False
        assert duplicate["cached"] == "memory"
        assert stats["service"]["solved"] == 2
        assert stats["cache"]["hits"] == 1
        assert health["status"] == "ok"

    def test_http_errors_are_json_not_disconnects(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            url = service.url
            try:
                with pytest.raises(ExperimentError, match="unknown heuristic"):
                    await self.request_in_executor(
                        lambda: solve_remote(
                            url, make_payload(heuristic="NoSuchHeuristic")
                        )
                    )
                with pytest.raises(ExperimentError, match="no such endpoint"):
                    await self.request_in_executor(
                        lambda: get_json(url + "/nowhere")
                    )
                stats = await self.request_in_executor(lambda: service_stats(url))
            finally:
                await service.stop()
            return stats

        stats = run(scenario())
        assert stats["service"]["errors"] == 2
        assert stats["service"]["solved"] == 0

    def test_malformed_content_length_does_not_kill_the_server(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(b"POST /solve HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
                await writer.drain()
                await reader.read()  # the bad connection is dropped...
                writer.close()
                # ...but the server survives and keeps answering.
                health = await self.request_in_executor(
                    lambda: get_json(service.url + "/healthz")
                )
            finally:
                await service.stop()
            return health

        assert run(scenario())["status"] == "ok"

    def test_solver_crash_returns_500_json(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)

            async def boom(request):
                raise RuntimeError("kernel exploded")

            service.batcher.submit = boom
            await service.start()
            url = service.url
            try:
                with pytest.raises(ExperimentError, match="kernel exploded"):
                    await self.request_in_executor(
                        lambda: solve_remote(url, make_payload())
                    )
                stats = await self.request_in_executor(lambda: service_stats(url))
            finally:
                await service.stop()
            return stats

        stats = run(scenario())
        assert stats["service"]["errors"] == 1
        assert stats["service"]["solved"] == 0

    def test_persistent_cache_warms_a_restarted_service(self, tmp_path):
        cache_dir = str(tmp_path / "solve-cache")
        payload = make_payload(seed=11)

        async def round_one():
            service = SolveService(port=0, window=0.001, cache_dir=cache_dir)
            await service.start()
            try:
                return await self.request_in_executor(
                    lambda: solve_remote(service.url, payload)
                )
            finally:
                await service.stop()

        async def round_two():
            service = SolveService(port=0, window=0.001, cache_dir=cache_dir)
            await service.start()
            try:
                return await self.request_in_executor(
                    lambda: solve_remote(service.url, payload)
                )
            finally:
                await service.stop()

        first = run(round_one())
        second = run(round_two())
        assert first["cached"] is False
        assert second["cached"] == "store"
        assert {k: v for k, v in second.items() if k != "cached"} == {
            k: v for k, v in first.items() if k != "cached"
        }
