"""Unit tests for the six paper heuristics (H1, H2, H3, H4, H4w, H4f)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FailureModel, Platform, ProblemInstance, TypeAssignment, evaluate
from repro.core.application import Application
from repro.heuristics import get_heuristic
from repro.heuristics.binary_search import (
    HeterogeneityBinarySearchHeuristic,
    RankBinarySearchHeuristic,
    worst_case_period_bound,
)
from repro.heuristics.greedy import (
    BestPerformanceHeuristic,
    FastestMachineHeuristic,
    ReliableMachineHeuristic,
)
from repro.heuristics.h1_random import RandomHeuristic

from tests.helpers import make_random_instance


class TestH1Random:
    def test_produces_valid_specialized_mapping(self):
        inst = make_random_instance(20, 4, 8, seed=1)
        result = RandomHeuristic().solve(inst, np.random.default_rng(0))
        result.mapping.validate(inst, "specialized")

    def test_reproducible_with_same_rng_seed(self):
        inst = make_random_instance(15, 3, 6, seed=2)
        r1 = RandomHeuristic().solve(inst, np.random.default_rng(42))
        r2 = RandomHeuristic().solve(inst, np.random.default_rng(42))
        assert list(r1.mapping) == list(r2.mapping)

    def test_different_seeds_usually_differ(self):
        inst = make_random_instance(30, 3, 15, seed=3)
        mappings = {
            tuple(RandomHeuristic().solve(inst, np.random.default_rng(s)).mapping)
            for s in range(5)
        }
        assert len(mappings) > 1

    def test_randomized_flag(self):
        assert RandomHeuristic.randomized is True

    def test_works_when_machines_equal_types(self):
        # m == p forces every task of a type onto the single machine of its type.
        inst = make_random_instance(10, 3, 3, seed=4)
        result = RandomHeuristic().solve(inst, np.random.default_rng(0))
        result.mapping.validate(inst, "specialized")
        assert len(result.mapping.used_machines()) == 3


class TestBinarySearchHeuristics:
    def test_worst_case_bound_dominates_any_mapping(self):
        inst = make_random_instance(10, 3, 4, seed=5)
        bound = worst_case_period_bound(inst)
        for name in ("H1", "H2", "H3", "H4", "H4w", "H4f"):
            result = get_heuristic(name).solve(inst, np.random.default_rng(0))
            assert result.period <= bound + 1e-6

    def test_h2_rank_computation(self):
        # Machine 0 is fastest on task 1, machine 1 fastest on task 0.
        app = Application.chain(TypeAssignment([0, 1]))
        w = np.array([[300.0, 100.0], [100.0, 300.0]])
        inst = ProblemInstance(app, Platform(w), FailureModel.failure_free(2, 2))
        h2 = RankBinarySearchHeuristic()
        h2.prepare(inst)
        assert h2._ranks[1, 0] == 0  # task 1 is machine 0's fastest task
        assert h2._ranks[0, 0] == 1
        assert h2._ranks[0, 1] == 0

    def test_h2_converges_close_to_best_greedy(self):
        inst = make_random_instance(20, 3, 10, seed=6)
        h2 = get_heuristic("H2").solve(inst)
        h4w = get_heuristic("H4w").solve(inst)
        # H2's bisection should not be wildly worse than the greedy winner.
        assert h2.period <= 3.0 * h4w.period

    def test_h3_prefers_heterogeneous_machines(self):
        # Two machines: machine 0 heterogeneous, machine 1 homogeneous; a
        # single-task instance must pick machine 0 when both are feasible.
        app = Application.chain(TypeAssignment([0, 0]))
        w = np.array([[100.0, 200.0], [900.0, 200.0]])
        inst = ProblemInstance(
            app,
            Platform(w, enforce_type_consistency=False),
            FailureModel.failure_free(2, 2),
        )
        h3 = HeterogeneityBinarySearchHeuristic()
        h3.prepare(inst)
        order = h3.machine_priority(inst, _state_for(inst), 1, [0, 1])
        assert order[0] == 0

    def test_integer_search_iteration_count_bounded(self):
        inst = make_random_instance(12, 2, 5, seed=7)
        result = RankBinarySearchHeuristic().solve(inst)
        # log2(worst-case bound) iterations at most, bound is < 2^40.
        assert result.iterations <= 64

    def test_relative_tolerance_mode(self):
        inst = make_random_instance(12, 2, 5, seed=8)
        strict = RankBinarySearchHeuristic(integer_search=False, rel_tol=1e-6).solve(inst)
        loose = RankBinarySearchHeuristic(integer_search=False, rel_tol=0.2).solve(inst)
        assert strict.period <= loose.period + 1e-9


def _state_for(instance):
    from repro.heuristics.base import AssignmentState

    return AssignmentState(instance)


class TestGreedyFamily:
    def test_h4_uses_failure_and_speed(self):
        # Machine 0: fast but very unreliable; machine 1: slower but safe.
        # H4w picks machine 0 (speed only); H4 must pick machine 1 because the
        # effective cost 100/(1-0.9) = 1000 > 200.
        app = Application.chain(TypeAssignment([0]))
        w = np.array([[100.0, 200.0]])
        f = np.array([[0.9, 0.0]])
        inst = ProblemInstance(app, Platform(w), FailureModel(f))
        assert BestPerformanceHeuristic().solve(inst).mapping[0] == 1
        assert FastestMachineHeuristic().solve(inst).mapping[0] == 0
        assert ReliableMachineHeuristic().solve(inst).mapping[0] == 1

    def test_h4f_ignores_speed(self):
        # Machine 0: slow and slightly safer; machine 1: fast, slightly riskier.
        app = Application.chain(TypeAssignment([0]))
        w = np.array([[900.0, 100.0]])
        f = np.array([[0.01, 0.02]])
        inst = ProblemInstance(app, Platform(w), FailureModel(f))
        assert ReliableMachineHeuristic().solve(inst).mapping[0] == 0
        assert FastestMachineHeuristic().solve(inst).mapping[0] == 1

    def test_greedy_balances_load_across_machines_of_same_type(self):
        # Four identical type-0 tasks, two identical machines: the greedy
        # heuristics should split them 2/2 rather than 4/0.
        app = Application.chain(TypeAssignment([0, 0, 0, 0]))
        inst = ProblemInstance(
            app, Platform.homogeneous(4, 2, 100.0), FailureModel.failure_free(4, 2)
        )
        result = BestPerformanceHeuristic().solve(inst)
        loads = result.mapping.machine_loads()
        assert sorted(len(tasks) for tasks in loads.values()) == [2, 2]

    def test_evaluation_matches_core_evaluate(self):
        inst = make_random_instance(15, 3, 6, seed=9)
        result = FastestMachineHeuristic().solve(inst)
        assert result.period == pytest.approx(evaluate(inst, result.mapping).period)

    @pytest.mark.parametrize(
        "cls", [BestPerformanceHeuristic, FastestMachineHeuristic, ReliableMachineHeuristic]
    )
    def test_single_pass(self, cls):
        inst = make_random_instance(10, 2, 4, seed=10)
        assert cls().solve(inst).iterations == 1


class TestHeuristicRelativeQuality:
    """Coarse quality relations the paper's experiments rely on."""

    def test_h4w_beats_h1_on_average(self):
        ratios = []
        for seed in range(8):
            inst = make_random_instance(40, 5, 20, seed=seed)
            h1 = get_heuristic("H1").solve(inst, np.random.default_rng(seed))
            h4w = get_heuristic("H4w").solve(inst)
            ratios.append(h1.period / h4w.period)
        assert np.mean(ratios) > 1.3  # H1 is clearly worse on average

    def test_informed_heuristics_beat_h4f_on_average(self):
        h4f_ratios = []
        for seed in range(8):
            inst = make_random_instance(40, 5, 10, seed=100 + seed)
            h4f = get_heuristic("H4f").solve(inst)
            h4 = get_heuristic("H4").solve(inst)
            h4f_ratios.append(h4f.period / h4.period)
        assert np.mean(h4f_ratios) > 1.0
