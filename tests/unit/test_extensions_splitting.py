"""Unit tests for the workload-splitting extension (repro.extensions.splitting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Application, FailureModel, Mapping, Platform, ProblemInstance, TypeAssignment, period
from repro.exact import solve_specialized_branch_and_bound
from repro.exceptions import InfeasibleProblemError
from repro.extensions import (
    dedication_from_mapping,
    optimal_split_for_dedication,
    split_specialized_mapping,
    splitting_lower_bound,
)
from repro.heuristics import get_heuristic
from tests.helpers import make_random_instance


def _single_type_instance() -> ProblemInstance:
    """Four identical tasks of one type on two machines of different speed."""
    app = Application.chain(TypeAssignment([0, 0, 0, 0]))
    w = np.tile(np.array([[100.0, 300.0]]), (4, 1))
    return ProblemInstance(app, Platform(w), FailureModel.failure_free(4, 2))


class TestDedication:
    def test_from_mapping(self, small_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        dedication = dedication_from_mapping(small_instance, mapping)
        assert dedication == {0: 0, 1: 1}

    def test_missing_type_rejected(self, small_instance):
        with pytest.raises(InfeasibleProblemError):
            optimal_split_for_dedication(small_instance, {0: 0})  # type 1 uncovered

    def test_bad_indices_rejected(self, small_instance):
        with pytest.raises(InfeasibleProblemError):
            optimal_split_for_dedication(small_instance, {9: 0, 1: 1})
        with pytest.raises(InfeasibleProblemError):
            optimal_split_for_dedication(small_instance, {0: 7, 1: 1})


class TestOptimalSplit:
    def test_failure_free_two_machines_share_by_speed(self):
        # Both machines dedicated to the single type; optimal split loads
        # them inversely to their speed: throughput = sum_u 1 / (total work on u).
        inst = _single_type_instance()
        result = optimal_split_for_dedication(inst, {0: 0, 1: 0})
        # Total work per product is 4 tasks; with speeds 100 and 300 ms/task
        # the combined capacity is 1/400 + 1/1200 products per ms.
        expected_throughput = 1.0 / 400.0 + 1.0 / 1200.0
        assert result.throughput == pytest.approx(expected_throughput, rel=1e-6)
        assert result.period == pytest.approx(1.0 / expected_throughput, rel=1e-6)

    def test_split_never_worse_than_unsplit_mapping(self):
        for seed in range(5):
            inst = make_random_instance(12, 3, 5, seed=seed)
            mapping = get_heuristic("H4w").solve(inst).mapping
            result = split_specialized_mapping(inst, mapping)
            assert result.period <= period(inst, mapping) + 1e-6
            assert result.baseline_period == pytest.approx(period(inst, mapping))
            assert 0.0 <= result.improvement <= 1.0 or np.isnan(result.improvement)

    def test_split_helps_when_one_machine_is_overloaded(self):
        # The unsplit mapping puts everything on machine 0 (period 400 ms);
        # dedicating the second machine to the same type and splitting must
        # strictly improve the period (here down to 300 ms).
        inst = _single_type_instance()
        unsplit = Mapping([0, 0, 0, 0], 2)
        result = optimal_split_for_dedication(inst, {0: 0, 1: 0})
        assert result.period < period(inst, unsplit) - 1e-6
        assert result.period == pytest.approx(300.0, rel=1e-6)

    def test_single_task_stream_is_divided_across_machines(self):
        # With a single task, the only way to use both machines is to divide
        # its stream — the paper's future-work scenario in its purest form.
        app = Application.chain(TypeAssignment([0]))
        inst = ProblemInstance(
            app, Platform(np.array([[100.0, 300.0]])), FailureModel.failure_free(1, 2)
        )
        unsplit_period = period(inst, Mapping([0], 2))  # 100 ms on the fast machine
        result = optimal_split_for_dedication(inst, {0: 0, 1: 0})
        assert result.fractional.tasks_split() == [0]
        assert result.period == pytest.approx(75.0, rel=1e-6)
        assert result.period < unsplit_period

    def test_split_limited_to_the_mapping_dedication(self):
        # split_specialized_mapping keeps the mapping's own machine set: with
        # a single dedicated machine there is nothing to split and the period
        # is unchanged.
        inst = _single_type_instance()
        unsplit = Mapping([0, 0, 0, 0], 2)
        result = split_specialized_mapping(inst, unsplit)
        assert result.period == pytest.approx(period(inst, unsplit), rel=1e-9)
        assert result.dedication == {0: 0}

    def test_rates_respect_dedication(self):
        inst = make_random_instance(10, 2, 4, seed=3)
        mapping = get_heuristic("H4").solve(inst).mapping
        result = split_specialized_mapping(inst, mapping)
        for task in range(inst.num_tasks):
            for machine in range(inst.num_machines):
                if result.fractional.rates[task, machine] > 1e-9:
                    assert result.dedication[machine] == inst.type_of(task)

    def test_machine_utilisation_bounded_by_one(self):
        inst = make_random_instance(15, 3, 6, seed=4)
        mapping = get_heuristic("H4w").solve(inst).mapping
        result = split_specialized_mapping(inst, mapping)
        utilisation = result.fractional.machine_utilisation(inst)
        assert np.all(utilisation <= 1.0 + 1e-6)
        # The bottleneck machine of the split solution is fully utilised.
        assert utilisation.max() == pytest.approx(1.0, abs=1e-6)

    def test_shares_sum_to_one_for_active_tasks(self):
        inst = make_random_instance(8, 2, 4, seed=5)
        mapping = get_heuristic("H2").solve(inst).mapping
        result = split_specialized_mapping(inst, mapping)
        shares = result.fractional.shares()
        assert np.allclose(shares.sum(axis=1), 1.0, atol=1e-6)


class TestLowerBound:
    def test_lower_bound_below_exact_specialized_optimum(self):
        for seed in range(4):
            inst = make_random_instance(8, 3, 4, seed=40 + seed)
            bound = splitting_lower_bound(inst)
            exact = solve_specialized_branch_and_bound(inst).period
            assert bound <= exact + 1e-6

    def test_lower_bound_below_any_split_result(self):
        inst = make_random_instance(10, 2, 5, seed=50)
        mapping = get_heuristic("H4w").solve(inst).mapping
        split = split_specialized_mapping(inst, mapping)
        assert splitting_lower_bound(inst) <= split.period + 1e-6

    def test_infeasible_instance_rejected(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        inst = ProblemInstance(
            app, Platform.homogeneous(3, 2, 10.0), FailureModel.failure_free(3, 2)
        )
        with pytest.raises(InfeasibleProblemError):
            splitting_lower_bound(inst)

    def test_failure_free_single_machine_bound_is_total_work(self):
        app = Application.chain(TypeAssignment([0, 0]))
        inst = ProblemInstance(
            app, Platform([[100.0], [200.0]]), FailureModel.failure_free(2, 1)
        )
        assert splitting_lower_bound(inst) == pytest.approx(300.0, rel=1e-6)
