"""Unit tests for the extra baseline heuristics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import evaluate
from repro.heuristics import get_heuristic
from repro.heuristics.baselines import (
    GreedyLoadBalanceHeuristic,
    RoundRobinHeuristic,
    UniformRandomSpecialized,
)
from tests.helpers import make_random_instance


class TestUniformRandomSpecialized:
    def test_valid_specialized_mapping(self):
        inst = make_random_instance(20, 4, 8, seed=0)
        result = UniformRandomSpecialized().solve(inst, np.random.default_rng(1))
        result.mapping.validate(inst, "specialized")

    def test_registered(self):
        assert get_heuristic("RandomUniform").name == "RandomUniform"

    def test_reproducible(self):
        inst = make_random_instance(15, 3, 6, seed=1)
        a = UniformRandomSpecialized().solve(inst, np.random.default_rng(5))
        b = UniformRandomSpecialized().solve(inst, np.random.default_rng(5))
        assert list(a.mapping) == list(b.mapping)


class TestRoundRobin:
    def test_valid_and_deterministic(self):
        inst = make_random_instance(20, 4, 8, seed=2)
        a = RoundRobinHeuristic().solve(inst)
        b = RoundRobinHeuristic().solve(inst)
        a.mapping.validate(inst, "specialized")
        assert list(a.mapping) == list(b.mapping)

    def test_spreads_tasks_of_one_type(self):
        # 8 tasks of a single type over 4 machines: round robin gives 2 each.
        inst = make_random_instance(8, 1, 4, seed=3)
        result = RoundRobinHeuristic().solve(inst)
        loads = result.mapping.machine_loads()
        assert sorted(len(v) for v in loads.values()) == [2, 2, 2, 2]


class TestGreedyForwardAblation:
    def test_valid_specialized_mapping(self):
        inst = make_random_instance(20, 4, 8, seed=4)
        result = GreedyLoadBalanceHeuristic().solve(inst)
        result.mapping.validate(inst, "specialized")

    def test_backward_h4_not_worse_on_average(self):
        # The paper's backward traversal should be at least as good as the
        # forward variant on average (this is the ablation's point).
        forward_periods, backward_periods = [], []
        for seed in range(6):
            inst = make_random_instance(30, 4, 8, seed=50 + seed)
            forward_periods.append(GreedyLoadBalanceHeuristic().solve(inst).period)
            backward_periods.append(get_heuristic("H4").solve(inst).period)
        assert np.mean(backward_periods) <= np.mean(forward_periods) * 1.10

    def test_evaluation_consistency(self):
        inst = make_random_instance(12, 3, 5, seed=6)
        result = GreedyLoadBalanceHeuristic().solve(inst)
        assert result.period == pytest.approx(evaluate(inst, result.mapping).period)
