"""Unit tests for the exhaustive oracle (repro.exact.bruteforce)."""

from __future__ import annotations

import pytest

from repro.core import FailureModel, MappingRule, Platform, ProblemInstance, evaluate
from repro.core.application import Application
from repro.core.types import TypeAssignment
from repro.exact.bruteforce import bruteforce_optimal
from repro.exceptions import InfeasibleProblemError, SolverError
from tests.helpers import make_random_instance


class TestBruteForce:
    def test_specialized_optimum_on_tiny_instance(self, small_instance):
        result = bruteforce_optimal(small_instance, "specialized")
        result.mapping.validate(small_instance, "specialized")
        # No specialized mapping can beat the reported optimum.
        assert result.explored > 0
        assert result.period == pytest.approx(evaluate(small_instance, result.mapping).period)

    def test_general_at_least_as_good_as_specialized(self, small_instance):
        specialized = bruteforce_optimal(small_instance, "specialized")
        general = bruteforce_optimal(small_instance, "general")
        assert general.period <= specialized.period + 1e-9

    def test_one_to_one_explores_injective_mappings_only(self):
        inst = make_random_instance(3, 3, 4, seed=0)
        result = bruteforce_optimal(inst, MappingRule.ONE_TO_ONE)
        result.mapping.validate(inst, "one-to-one")
        # 4 * 3 * 2 injective mappings of 3 tasks onto 4 machines.
        assert result.explored == 24

    def test_specialized_explored_counts_only_valid_mappings(self):
        # 2 tasks of different types on 2 machines: the 2 mappings putting
        # both tasks on one machine are invalid, leaving 2 valid ones.
        app = Application.chain(TypeAssignment([0, 1]))
        inst = ProblemInstance(
            app, Platform.homogeneous(2, 2, 10.0), FailureModel.failure_free(2, 2)
        )
        result = bruteforce_optimal(inst, "specialized")
        assert result.explored == 2

    def test_infeasible_one_to_one(self):
        inst = make_random_instance(5, 2, 3, seed=1)
        with pytest.raises(InfeasibleProblemError):
            bruteforce_optimal(inst, "one-to-one")

    def test_infeasible_specialized(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        inst = ProblemInstance(
            app, Platform.homogeneous(3, 2, 10.0), FailureModel.failure_free(3, 2)
        )
        with pytest.raises(InfeasibleProblemError):
            bruteforce_optimal(inst, "specialized")

    def test_search_space_limit(self):
        inst = make_random_instance(12, 3, 8, seed=2)
        with pytest.raises(SolverError, match="enumeration limit"):
            bruteforce_optimal(inst, "general", limit=1000)

    def test_optimum_dominates_every_heuristic(self, small_instance):
        from repro.heuristics import PAPER_HEURISTICS, get_heuristic
        import numpy as np

        optimum = bruteforce_optimal(small_instance, "specialized").period
        for name in PAPER_HEURISTICS:
            heuristic_period = (
                get_heuristic(name).solve(small_instance, np.random.default_rng(0)).period
            )
            assert heuristic_period >= optimum - 1e-9
