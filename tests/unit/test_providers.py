"""Unit tests for the curve-provider registry and block evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ReproError
from repro.experiments.providers import (
    MIP_LABEL,
    OTO_LABEL,
    BlockResult,
    CellBlock,
    CurveProvider,
    HeuristicProvider,
    LocalSearchProvider,
    MilpProvider,
    OneToOneProvider,
    available_providers,
    register_provider,
    resolve_curves,
    resolve_provider,
)
from repro.generators import ScenarioConfig
from repro.heuristics import get_heuristic
from repro.simulation.rng import RandomStreamFactory


def _scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="prov-test",
        num_machines=5,
        num_types=2,
        sweep="tasks",
        sweep_values=(6,),
        repetitions=3,
        heuristics=("H2", "H4w"),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def _block(scenario=None, sweep_value=6, seed=7) -> CellBlock:
    scenario = scenario or _scenario()
    return CellBlock.sample(scenario, sweep_value, RandomStreamFactory(seed))


class TestCellBlock:
    def test_sample_stacks_all_repetitions(self):
        block = _block()
        assert block.repetitions == 3
        assert len(block.instances) == 3
        assert block.stack.num_instances == 3
        assert block.stack.num_tasks == 6
        assert block.stack.num_machines == 5

    def test_sampled_instances_match_the_per_cell_draw(self):
        from repro.generators.scenarios import sample_instance

        scenario = _scenario()
        block = _block(scenario)
        for repetition, instance in enumerate(block.instances):
            reference = sample_instance(
                scenario, 6, repetition, RandomStreamFactory(7)
            )
            assert (instance.processing_times == reference.processing_times).all()
            assert (instance.failure_rates == reference.failure_rates).all()


class TestHeuristicProvider:
    def test_block_periods_match_scalar_solve(self):
        scenario = _scenario()
        block = _block(scenario)
        provider = HeuristicProvider("H4w")
        result = provider.evaluate_block(block)
        streams = RandomStreamFactory(7)
        for repetition, instance in enumerate(block.instances):
            rng = streams.stream("heuristic/H4w/6", repetition)
            expected = get_heuristic("H4w").solve(instance, rng).period
            assert result.periods[repetition] == expected  # bit-for-bit

    def test_randomized_heuristic_uses_the_runner_streams(self):
        block = _block(_scenario(heuristics=("H1",)))
        a = HeuristicProvider("H1").evaluate_block(block)
        b = HeuristicProvider("H1").evaluate_block(block)
        assert (a.periods == b.periods).all()

    def test_label_keeps_requested_spelling(self):
        assert HeuristicProvider("h4w").label == "h4w"


class TestLocalSearchProvider:
    def test_never_above_base(self):
        block = _block(_scenario(repetitions=5))
        base = HeuristicProvider("H4w").evaluate_block(block)
        refined = LocalSearchProvider("H4w").evaluate_block(block)
        assert refined.label == "H4w+ls"
        assert (refined.periods <= base.periods).all()

    def test_matches_h4ls_heuristic_curve(self):
        block = _block(_scenario(repetitions=4))
        via_provider = LocalSearchProvider("H4w").evaluate_block(block)
        via_heuristic = HeuristicProvider("H4ls").evaluate_block(block)
        np.testing.assert_allclose(
            via_provider.periods, via_heuristic.periods, rtol=1e-9
        )


class TestExactProviders:
    def test_milp_is_a_lower_bound(self):
        block = _block(_scenario(repetitions=2, sweep_values=(4,)), sweep_value=4)
        milp = MilpProvider(time_limit=20.0).evaluate_block(block)
        heur = HeuristicProvider("H4w").evaluate_block(block)
        assert milp.label == MIP_LABEL
        assert milp.failures == 0
        assert (milp.periods <= heur.periods + 1e-6).all()

    def test_one_to_one_runs_on_task_dependent_failures(self):
        scenario = _scenario(
            num_machines=8,
            repetitions=2,
            sweep_values=(4,),
            task_dependent_failures=True,
        )
        block = _block(scenario, sweep_value=4)
        result = OneToOneProvider().evaluate_block(block)
        assert result.label == OTO_LABEL
        assert np.isfinite(result.periods).all()

    def test_milp_configure_sets_time_limit(self):
        provider = MilpProvider().configure(milp_time_limit=5.0)
        assert provider.time_limit == 5.0


class TestRegistryAndResolution:
    def test_builtin_providers_registered(self):
        assert MIP_LABEL in available_providers()
        assert OTO_LABEL in available_providers()

    def test_resolution_order(self):
        assert isinstance(resolve_provider("MIP"), MilpProvider)
        assert isinstance(resolve_provider("OtO"), OneToOneProvider)
        assert isinstance(resolve_provider("H4w"), HeuristicProvider)
        assert isinstance(resolve_provider("H2+ls"), LocalSearchProvider)

    def test_unknown_curve_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_provider("nope")
        with pytest.raises(ExperimentError):
            resolve_provider("nope+ls")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError):
            register_provider(MilpProvider)

    def test_resolve_curves_order_and_duplicates(self):
        scenario = _scenario()
        providers = resolve_curves(
            scenario, use_milp=True, use_oto=True, extra_curves=("H4ls",)
        )
        assert [p.label for p in providers] == ["H2", "H4w", "H4ls", MIP_LABEL, OTO_LABEL]
        # A curve listed both in the scenario and as an extra is
        # deduplicated — case-insensitively, like provider resolution.
        providers = resolve_curves(
            scenario, use_milp=False, use_oto=False, extra_curves=("H4w",)
        )
        assert [p.label for p in providers] == ["H2", "H4w"]
        providers = resolve_curves(
            scenario, use_milp=False, use_oto=False, extra_curves=("h4w",)
        )
        assert [p.label for p in providers] == ["H2", "H4w"]

    def test_custom_provider_registration(self):
        class ConstantProvider(CurveProvider):
            label = "const-test"

            def evaluate_block(self, block):
                return BlockResult(
                    label=self.label,
                    periods=np.ones(block.repetitions, dtype=np.float64),
                )

        register_provider(ConstantProvider)
        try:
            provider = resolve_provider("const-test")
            result = provider.evaluate_block(_block())
            assert (result.periods == 1.0).all()
        finally:
            from repro.experiments import providers as module

            module._REGISTRY.pop("const-test")
