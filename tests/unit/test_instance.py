"""Unit tests for repro.core.instance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Application,
    FailureModel,
    Platform,
    ProblemInstance,
    TypeAssignment,
    linear_chain,
)
from repro.exceptions import InvalidInstanceError


def _simple_instance() -> ProblemInstance:
    app = Application.chain(TypeAssignment([0, 1, 0]))
    w = [[100.0, 200.0], [50.0, 60.0], [100.0, 200.0]]
    f = [[0.1, 0.2], [0.0, 0.05], [0.02, 0.01]]
    return ProblemInstance(app, Platform(w, types=app.types), FailureModel(f), name="demo")


class TestValidation:
    def test_dimensions_exposed(self):
        inst = _simple_instance()
        assert inst.num_tasks == 3
        assert inst.num_types == 2
        assert inst.num_machines == 2
        assert inst.name == "demo"

    def test_platform_task_mismatch(self):
        app = linear_chain(3, num_types=1)
        platform = Platform.homogeneous(2, 2, 100.0)
        failures = FailureModel.failure_free(3, 2)
        with pytest.raises(InvalidInstanceError):
            ProblemInstance(app, platform, failures)

    def test_failure_task_mismatch(self):
        app = linear_chain(3, num_types=1)
        platform = Platform.homogeneous(3, 2, 100.0)
        failures = FailureModel.failure_free(2, 2)
        with pytest.raises(InvalidInstanceError):
            ProblemInstance(app, platform, failures)

    def test_failure_machine_mismatch(self):
        app = linear_chain(3, num_types=1)
        platform = Platform.homogeneous(3, 2, 100.0)
        failures = FailureModel.failure_free(3, 4)
        with pytest.raises(InvalidInstanceError):
            ProblemInstance(app, platform, failures)


class TestQueries:
    def test_w_and_f_accessors(self):
        inst = _simple_instance()
        assert inst.w(1, 0) == 50.0
        assert inst.f(0, 1) == 0.2
        assert inst.attempts_factor(0, 0) == pytest.approx(1.0 / 0.9)
        assert inst.type_of(2) == 0

    def test_effective_cost(self):
        inst = _simple_instance()
        assert inst.effective_cost(0, 0) == pytest.approx(100.0 / 0.9)

    def test_matrix_views(self):
        inst = _simple_instance()
        assert inst.processing_times.shape == (3, 2)
        assert inst.failure_rates.shape == (3, 2)

    def test_support_predicates(self):
        inst = _simple_instance()
        assert not inst.supports_one_to_one()  # m=2 < n=3
        assert inst.supports_specialized()  # m=2 >= p=2

    def test_repr_contains_dimensions(self):
        assert "n=3" in repr(_simple_instance())


class TestSerialization:
    def test_round_trip(self):
        inst = _simple_instance()
        clone = ProblemInstance.from_dict(inst.to_dict())
        assert clone.num_tasks == inst.num_tasks
        assert clone.name == "demo"
        assert np.allclose(clone.processing_times, inst.processing_times)
        assert np.allclose(clone.failure_rates, inst.failure_rates)
        assert list(clone.application.types) == list(inst.application.types)
