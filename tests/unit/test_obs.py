"""Unit tests for the unified telemetry subsystem (`repro.obs`).

Covers the metrics registry and its Prometheus exposition, the span
tracer (including propagation across executor threads, worker
processes and the DAG's stealing dispatch), the `/v1/metrics` endpoint
with `X-Request-Id` attribution, and the `trace summarize` CLI.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cli import main
from repro.obs import trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LatencyReservoir,
    MetricsRegistry,
)
from repro.obs.summary import format_table, format_tree, load_spans, summarize_spans
from repro.obs.trace import (
    TraceContext,
    TraceStore,
    request_id_or_new,
    span,
)
from repro.service import SolveService, SolveWorkerPool, normalize_request
from repro.service.client import ServiceClient
from repro.service.pool import solve_group, solve_group_traced


@pytest.fixture(autouse=True)
def _no_leaked_tracing():
    """Tracing is process-global state; never let a test leak it."""
    yield
    trace.disable()


def make_payload(**overrides) -> dict:
    payload = {
        "heuristic": "H4w",
        "application": {"tasks": 10, "types": 3},
        "platform": {"machines": 5},
        "options": {"seed": 0, "repetition": 0},
    }
    for key, value in overrides.items():
        if key in ("tasks", "types"):
            payload["application"][key] = value
        elif key == "machines":
            payload["platform"][key] = value
        elif key in ("seed", "repetition"):
            payload["options"][key] = value
        else:
            payload[key] = value
    return payload


class TestMetricsPrimitives:
    def test_counter_stays_int_and_rejects_decrements(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert isinstance(counter.value, int)
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_set_and_high_water_mark(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3)
        gauge.max(2)
        assert gauge.value == 3
        gauge.max(7)
        assert gauge.value == 7

    def test_histogram_buckets_are_cumulative_with_le_semantics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.01, 0.5, 5.0):
            histogram.observe(value)
        child = histogram.labels()
        # le=0.01 covers 0.005 and the exact boundary 0.01.
        assert child.bucket_counts() == [2, 2, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.515)

    def test_latency_reservoir_relocated_with_deprecated_alias(self):
        from repro.service.metrics import LatencyReservoir as aliased

        assert aliased is LatencyReservoir
        reservoir = LatencyReservoir(size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):  # wraps: 5.0 evicts 1.0
            reservoir.add(value)
        # Ring wrapped: samples are {2, 3, 4, 5}; nearest-rank p50 is 3.
        assert reservoir.percentile(0.5) == 3.0
        assert reservoir.percentile(1.0) == 5.0


class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labels=("tier",))

    def test_labeled_children_and_label_validation(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", labels=("tier",))
        family.labels(tier="memory").inc(2)
        family.labels(tier="store").inc()
        assert family.labels(tier="memory").value == 2
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(level="memory")
        with pytest.raises(ValueError, match="use .labels"):
            family.inc()

    def test_render_is_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "Things counted.").inc(3)
        registry.counter("repro_hits_total", labels=("tier",)).labels(
            tier='we"ird\n'
        ).inc()
        registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render()
        assert "# HELP repro_x_total Things counted.\n" in text
        assert "# TYPE repro_x_total counter\n" in text
        assert "repro_x_total 3\n" in text
        # Label values escape quotes and newlines.
        assert 'repro_hits_total{tier="we\\"ird\\n"} 1' in text
        # Cumulative buckets end at +Inf and agree with _count.
        assert 'repro_lat_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_lat_seconds_bucket{le="1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.5" in text
        assert "repro_lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b", labels=("k",)).labels(k="v").set(2)
        registry.histogram("c_seconds").observe(0.2)
        snapshot = registry.snapshot()
        assert snapshot["a_total"] == {"kind": "counter", "samples": {"": 1}}
        assert snapshot["b"]["samples"] == {'{k="v"}': 2}
        assert snapshot["c_seconds"]["samples"][""]["count"] == 1
        json.dumps(snapshot)  # must serialize as-is

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestTracer:
    def test_disabled_span_is_a_shared_noop(self):
        first = span("anything", attr=1)
        second = span("else")
        assert first is second
        with first as live:
            live.set(more=2)  # must not raise
        assert trace.current_context() is None
        assert not trace.tracing_active()

    def test_nested_spans_share_a_trace_and_link_parents(self, tmp_path):
        store = trace.configure(tmp_path / "traces")
        with span("outer", site="test") as outer:
            with span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        trace.disable()
        records = {r["name"]: r for r in TraceStore(tmp_path / "traces").spans()}
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None
        assert records["outer"]["site"] == "test"
        assert records["inner"]["duration"] <= records["outer"]["duration"]
        assert str(store.path) == str(tmp_path / "traces")

    def test_exceptions_are_recorded_and_propagate(self, tmp_path):
        trace.configure(tmp_path / "traces")
        with pytest.raises(ValueError, match="boom"):
            with span("fails"):
                raise ValueError("boom")
        trace.disable()
        (record,) = load_spans(tmp_path / "traces")
        assert record["error"] == "ValueError: boom"

    def test_capture_buffers_instead_of_the_store(self, tmp_path):
        trace.configure(tmp_path / "traces")
        with trace.capture() as buffered:
            with span("worker.side"):
                pass
        assert [r["name"] for r in buffered] == ["worker.side"]
        assert load_spans(tmp_path / "traces") == []  # nothing hit the store
        trace.emit_spans(buffered)
        assert [r["name"] for r in load_spans(tmp_path / "traces")] == ["worker.side"]

    def test_emit_timing_parents_at_the_current_span(self, tmp_path):
        trace.configure(tmp_path / "traces")
        with span("solve") as solve_span:
            trace.emit_timing("kernel.fake", 0.25, calls=10)
        trace.disable()
        records = {r["name"]: r for r in load_spans(tmp_path / "traces")}
        kernel = records["kernel.fake"]
        assert kernel["parent_id"] == solve_span.span_id
        assert kernel["duration"] == 0.25
        assert kernel["calls"] == 10
        # Back-dated so the synthetic span nests inside its parent.
        assert kernel["start"] <= records["solve"]["start"] + records["solve"]["duration"]

    def test_activate_reenters_a_foreign_context(self):
        context = TraceContext(trace.new_id(), trace.new_id())
        with trace.activate(context):
            assert trace.current_context() == context
        assert trace.current_context() is None
        with trace.activate(None):
            assert trace.current_context() is None

    def test_request_id_validation(self):
        assert request_id_or_new("abc-123.x_y") == "abc-123.x_y"
        for bad in (None, "", "has space", "UPPER", "x" * 65):
            generated = request_id_or_new(bad)
            assert generated.startswith("r")
            assert len(generated) == 17


class TestSummarize:
    def _chain(self, names, durations):
        """A single trace: names[0] parents names[1] parents ..."""
        trace_id = trace.new_id()
        spans, parent = [], None
        for index, (name, duration) in enumerate(zip(names, durations)):
            span_id = f"s{index}"
            spans.append(
                {
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent,
                    "name": name,
                    "start": float(index),
                    "duration": duration,
                }
            )
            parent = span_id
        return spans

    def test_self_time_telescopes_to_the_root_latency(self):
        spans = self._chain(["root", "mid", "leaf"], [1.0, 0.7, 0.3])
        aggregates = {a.name: a for a in summarize_spans(spans)}
        assert aggregates["root"].self_seconds == pytest.approx(0.3)
        assert aggregates["mid"].self_seconds == pytest.approx(0.4)
        assert aggregates["leaf"].self_seconds == pytest.approx(0.3)
        total_self = sum(a.self_seconds for a in aggregates.values())
        assert total_self == pytest.approx(1.0)  # == the root's latency

    def test_self_time_floors_at_zero(self):
        spans = self._chain(["root", "child"], [0.1, 0.5])  # child outlives root
        aggregates = {a.name: a for a in summarize_spans(spans)}
        assert aggregates["root"].self_seconds == 0.0

    def test_format_table_and_tree(self):
        spans = self._chain(["root", "leaf"], [1.0, 0.4])
        table = format_table(summarize_spans(spans))
        assert "span" in table and "self_%" in table
        assert "root" in table and "leaf" in table
        tree = format_tree(spans)
        assert tree.splitlines()[0].startswith("trace ")
        assert "- root 1000.000 ms" in tree
        assert "  - leaf 400.000 ms" in tree

    def test_cli_trace_summarize(self, tmp_path, capsys):
        trace.configure(tmp_path / "traces")
        with span("cli.outer"):
            with span("cli.inner"):
                pass
        trace.disable()
        assert main(["trace", "summarize", str(tmp_path / "traces"), "--tree"]) == 0
        out = capsys.readouterr().out
        assert "cli.outer" in out and "cli.inner" in out
        assert "trace " in out  # the --tree section
        assert main(["trace", "summarize", str(tmp_path / "traces"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 2
        assert {a["name"] for a in payload["aggregates"]} == {"cli.outer", "cli.inner"}


class TestPropagation:
    def test_pool_worker_spans_carry_the_callers_context(self):
        """Spans made inside a worker process join the caller's trace."""
        context = TraceContext(trace.new_id(), trace.new_id())
        requests = tuple(
            normalize_request(make_payload(seed=seed)) for seed in range(2)
        )
        with SolveWorkerPool(1) as pool:
            responses, batched, spans = pool.executor.submit(
                solve_group_traced, requests, False, context
            ).result()
        reference, reference_batched = solve_group(requests, False)
        assert responses == reference  # tracing never changes results
        assert batched is reference_batched
        by_name = {r["name"]: r for r in spans}
        solve_span = by_name["pool.worker_solve"]
        assert solve_span["trace_id"] == context.trace_id
        assert solve_span["parent_id"] == context.span_id
        assert solve_span["requests"] == 2
        # Kernel timings (if any kernels ran) nest under the solve span.
        for record in spans:
            if record["name"].startswith("kernel."):
                assert record["trace_id"] == context.trace_id
                assert record["parent_id"] == solve_span["span_id"]

    def test_dag_parallel_block_jobs_join_the_pipeline_trace(self, tmp_path):
        from repro.campaign import CampaignManifest
        from repro.dag import build_pipeline, run_pipeline
        from repro.experiments.store import ResultStore

        manifest = CampaignManifest(
            figures=("fig5",),
            seeds=(0,),
            repetitions=2,
            max_points=2,
            no_milp=True,
            milp_time_limit=30.0,
        )
        trace.configure(tmp_path / "traces")
        store = ResultStore(tmp_path / "s")
        run_pipeline(build_pipeline(manifest), store, workers=2)
        store.close()
        trace.disable()
        spans = load_spans(tmp_path / "traces")
        by_name: dict[str, list[dict]] = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        (pipeline_span,) = by_name["dag.pipeline"]
        (dispatch_span,) = by_name["dag.dispatch"]
        assert dispatch_span["trace_id"] == pipeline_span["trace_id"]
        blocks = by_name["dag.block_job"]
        assert len(blocks) == dispatch_span["executed"]
        for block in blocks:
            # Produced inside pool worker processes, yet part of the
            # dispatching trace, hung off the dispatch span.
            assert block["trace_id"] == pipeline_span["trace_id"]
            assert block["parent_id"] == dispatch_span["span_id"]
        # Stage executions are keyed by their content key.
        stage_keys = {record["key"] for record in by_name["dag.stage"]}
        pipeline = build_pipeline(manifest)
        assert {s.key for s in pipeline.generates.values()} <= stage_keys

    def test_http_request_trace_links_batcher_pool_and_cache(self, tmp_path):
        trace.configure(tmp_path / "traces")

        async def scenario():
            service = SolveService(port=0, window=0.001, cache_dir=None)
            await service.start()
            loop = asyncio.get_running_loop()
            client = ServiceClient(service.url)
            try:
                response = await loop.run_in_executor(
                    None,
                    lambda: client.solve(make_payload(seed=3), request_id="trace-me-1"),
                )
                echoed = client.last_request_id
                metrics_text = await loop.run_in_executor(None, client.metrics)
                stats = await loop.run_in_executor(None, client.stats)
            finally:
                client.close()
                await service.stop()
            return response, echoed, metrics_text, stats

        response, echoed, metrics_text, stats = asyncio.run(scenario())
        trace.disable()
        assert response["period"] > 0
        assert echoed == "trace-me-1"  # client id echoed back verbatim

        # /v1/metrics is Prometheus text covering every stats family.
        assert "# TYPE repro_service_requests_total counter" in metrics_text
        assert "repro_service_requests_total 1" in metrics_text
        for series in (
            "repro_batcher_requests_total",
            "repro_cache_misses_total",
            "repro_sessions_lifecycle_total",
            "repro_service_latency_seconds_bucket",
            "repro_backend_info",
        ):
            assert series in metrics_text, series
        # /v1/stats carries the registry snapshot; the two cannot drift.
        assert stats["metrics"]["repro_service_requests_total"]["samples"][""] == 1
        assert stats["service"]["solved"] == 1

        spans = load_spans(tmp_path / "traces")
        by_name: dict[str, list[dict]] = {}
        for record in spans:
            by_name.setdefault(record["name"], []).append(record)
        request_span = next(
            r for r in by_name["http.request"] if r.get("request_id") == "trace-me-1"
        )
        trace_id = request_span["trace_id"]
        (group_span,) = by_name["batcher.group"]
        (roundtrip_span,) = by_name["pool.roundtrip"]
        (worker_span,) = by_name["pool.worker_solve"]
        (write_span,) = by_name["cache.write"]
        chain = [group_span, roundtrip_span, worker_span, write_span]
        assert all(record["trace_id"] == trace_id for record in chain)
        # The tree: request -> group -> roundtrip -> worker solve, and
        # the cache write also hangs off the group.
        assert group_span["parent_id"] == request_span["span_id"]
        assert roundtrip_span["parent_id"] == group_span["span_id"]
        assert worker_span["parent_id"] == roundtrip_span["span_id"]
        assert write_span["parent_id"] == group_span["span_id"]
        # Coalesced attribution: the group names the request keys it served.
        assert normalize_request(make_payload(seed=3)).key in group_span["request_keys"]

        # `trace summarize` invariant: inside the group subtree the self
        # times telescope back to the group's end-to-end latency.
        subtree = {
            group_span["span_id"],
            roundtrip_span["span_id"],
            worker_span["span_id"],
            write_span["span_id"],
        }
        members = [
            r
            for r in spans
            if r["span_id"] in subtree
            or (r["parent_id"] in subtree and r["name"].startswith("kernel."))
        ]
        total_self = sum(
            a.self_seconds for a in summarize_spans(members)
        )
        assert total_self == pytest.approx(group_span["duration"], rel=0.15, abs=5e-3)
