"""Unit tests for the exact one-to-one solvers (Theorem 1 / Figure 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FailureModel,
    Platform,
    ProblemInstance,
    evaluate,
    linear_chain,
)
from repro.exact.bruteforce import bruteforce_optimal
from repro.exact.one_to_one import (
    optimal_one_to_one,
    optimal_one_to_one_homogeneous,
    optimal_one_to_one_task_dependent,
)
from repro.exceptions import InfeasibleProblemError, SolverError
from tests.helpers import make_random_instance


def _homogeneous_chain_instance(n: int, m: int, seed: int) -> ProblemInstance:
    rng = np.random.default_rng(seed)
    app = linear_chain(n, num_types=n)
    platform = Platform.homogeneous(n, m, 100.0)
    failures = FailureModel(rng.uniform(0.0, 0.3, size=(n, m)))
    return ProblemInstance(app, platform, failures)


class TestHomogeneousTheorem1:
    def test_matches_bruteforce_optimum(self):
        for seed in range(5):
            inst = _homogeneous_chain_instance(4, 5, seed)
            exact = optimal_one_to_one_homogeneous(inst)
            brute = bruteforce_optimal(inst, "one-to-one")
            assert exact.period == pytest.approx(brute.period, rel=1e-9)

    def test_one_to_one_rule_respected(self):
        inst = _homogeneous_chain_instance(5, 7, 11)
        result = optimal_one_to_one_homogeneous(inst)
        result.mapping.validate(inst, "one-to-one")
        assert result.method == "hungarian-homogeneous"

    def test_requires_chain(self):
        from repro.core import in_tree

        tree = in_tree([1, 1], num_types=3)
        platform = Platform.homogeneous(3, 4, 100.0)
        inst = ProblemInstance(tree, platform, FailureModel.failure_free(3, 4))
        with pytest.raises(SolverError):
            optimal_one_to_one_homogeneous(inst)

    def test_requires_homogeneous_platform(self):
        inst = make_random_instance(4, 4, 6, seed=0)
        with pytest.raises(SolverError):
            optimal_one_to_one_homogeneous(inst)

    def test_requires_enough_machines(self):
        inst = _homogeneous_chain_instance(5, 3, 0)
        with pytest.raises(InfeasibleProblemError):
            optimal_one_to_one_homogeneous(inst)

    def test_period_is_first_task_bottleneck(self):
        # With homogeneous w, the period equals x_1 * w where x_1 is the
        # product of the chosen F factors (Theorem 1's argument).
        inst = _homogeneous_chain_instance(4, 6, 3)
        result = optimal_one_to_one_homogeneous(inst)
        x = evaluate(inst, result.mapping).expected_products
        assert result.period == pytest.approx(x[0] * 100.0)


class TestTaskDependentBottleneck:
    def test_matches_bruteforce_optimum(self):
        for seed in range(5):
            inst = make_random_instance(4, 4, 5, seed=seed, task_dependent=True, f_high=0.2)
            exact = optimal_one_to_one_task_dependent(inst)
            brute = bruteforce_optimal(inst, "one-to-one")
            assert exact.period == pytest.approx(brute.period, rel=1e-9)

    def test_requires_task_dependent_failures(self):
        inst = make_random_instance(4, 4, 5, seed=1)
        with pytest.raises(SolverError):
            optimal_one_to_one_task_dependent(inst)

    def test_mapping_is_one_to_one(self):
        inst = make_random_instance(6, 3, 8, seed=2, task_dependent=True)
        result = optimal_one_to_one_task_dependent(inst)
        result.mapping.validate(inst, "one-to-one")
        assert result.method == "bottleneck-task-dependent"


class TestDispatcher:
    def test_prefers_homogeneous_branch(self):
        inst = _homogeneous_chain_instance(4, 5, 7)
        assert optimal_one_to_one(inst).method == "hungarian-homogeneous"

    def test_uses_bottleneck_for_task_dependent(self):
        inst = make_random_instance(5, 2, 6, seed=3, task_dependent=True)
        assert optimal_one_to_one(inst).method == "bottleneck-task-dependent"

    def test_falls_back_to_bruteforce_for_small_general(self):
        inst = make_random_instance(4, 2, 5, seed=4)
        result = optimal_one_to_one(inst)
        assert result.method == "bruteforce"
        brute = bruteforce_optimal(inst, "one-to-one")
        assert result.period == pytest.approx(brute.period)

    def test_infeasible_when_not_enough_machines(self):
        inst = make_random_instance(6, 2, 4, seed=5)
        with pytest.raises(InfeasibleProblemError):
            optimal_one_to_one(inst)

    def test_specialized_optimum_never_worse_than_one_to_one_optimum(self):
        # Every one-to-one mapping is a valid specialized mapping, so the
        # specialized optimum can only be better (or equal).
        inst = make_random_instance(4, 2, 5, seed=6, task_dependent=True)
        oto = optimal_one_to_one_task_dependent(inst)
        specialized = bruteforce_optimal(inst, "specialized")
        assert specialized.period <= oto.period + 1e-9
