"""Unit tests for repro.core.failure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.failure import FailureModel
from repro.core.types import TypeAssignment
from repro.exceptions import InvalidFailureModelError


class TestConstruction:
    def test_basic(self):
        f = FailureModel([[0.1, 0.2], [0.0, 0.5]])
        assert f.num_tasks == 2
        assert f.num_machines == 2
        assert f.rate(1, 1) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidFailureModelError):
            FailureModel([[1.0]])
        with pytest.raises(InvalidFailureModelError):
            FailureModel([[-0.1]])
        with pytest.raises(InvalidFailureModelError):
            FailureModel([[np.nan]])

    def test_rejects_wrong_shape(self):
        with pytest.raises(InvalidFailureModelError):
            FailureModel([0.1, 0.2])
        with pytest.raises(InvalidFailureModelError):
            FailureModel(np.empty((0, 2)))

    def test_matrix_read_only(self):
        f = FailureModel([[0.1]])
        with pytest.raises(ValueError):
            f.rates[0, 0] = 0.5

    def test_type_consistency_optional(self):
        types = TypeAssignment([0, 0])
        rates = [[0.1, 0.2], [0.3, 0.2]]
        # Not enforced by default.
        FailureModel(rates, types=types)
        with pytest.raises(InvalidFailureModelError):
            FailureModel(rates, types=types, enforce_type_consistency=True)


class TestConstructors:
    def test_failure_free(self):
        f = FailureModel.failure_free(3, 2)
        assert f.is_failure_free()
        assert np.all(f.attempts_factors == 1.0)

    def test_failure_free_validation(self):
        with pytest.raises(InvalidFailureModelError):
            FailureModel.failure_free(0, 2)

    def test_uniform(self):
        f = FailureModel.uniform(2, 2, 0.25)
        assert np.all(f.rates == 0.25)
        with pytest.raises(InvalidFailureModelError):
            FailureModel.uniform(2, 2, 1.0)

    def test_task_dependent(self):
        f = FailureModel.task_dependent([0.1, 0.2], 3)
        assert f.is_task_dependent()
        assert f.rates.shape == (2, 3)
        assert np.all(f.rates[1] == 0.2)

    def test_task_dependent_validation(self):
        with pytest.raises(InvalidFailureModelError):
            FailureModel.task_dependent([], 3)
        with pytest.raises(InvalidFailureModelError):
            FailureModel.task_dependent([0.1], 0)

    def test_machine_dependent(self):
        f = FailureModel.machine_dependent([0.1, 0.2, 0.3], 2)
        assert f.is_machine_dependent()
        assert f.rates.shape == (2, 3)
        assert np.all(f.rates[:, 2] == 0.3)

    def test_machine_dependent_validation(self):
        with pytest.raises(InvalidFailureModelError):
            FailureModel.machine_dependent([], 2)
        with pytest.raises(InvalidFailureModelError):
            FailureModel.machine_dependent([0.1], 0)

    def test_from_loss_counts(self):
        # f = l / b as in the paper: 1 product lost every 50 processed.
        f = FailureModel.from_loss_counts([[1, 2]], [[50, 100]])
        assert f.rate(0, 0) == pytest.approx(0.02)
        assert f.rate(0, 1) == pytest.approx(0.02)

    def test_from_loss_counts_validation(self):
        with pytest.raises(InvalidFailureModelError):
            FailureModel.from_loss_counts([[1]], [[1]])  # l == b
        with pytest.raises(InvalidFailureModelError):
            FailureModel.from_loss_counts([[1]], [[0]])
        with pytest.raises(InvalidFailureModelError):
            FailureModel.from_loss_counts([[1, 1]], [[2]])


class TestQueries:
    def test_attempts_factor(self):
        f = FailureModel([[0.5]])
        assert f.attempts_factor(0, 0) == pytest.approx(2.0)
        assert f.success_rate(0, 0) == pytest.approx(0.5)

    def test_attempts_factors_matrix(self):
        f = FailureModel([[0.0, 0.5], [0.2, 0.75]])
        expected = np.array([[1.0, 2.0], [1.25, 4.0]])
        assert np.allclose(f.attempts_factors, expected)

    def test_dependency_predicates(self):
        per_task = FailureModel.task_dependent([0.1, 0.3], 4)
        per_machine = FailureModel.machine_dependent([0.1, 0.3], 4)
        general = FailureModel([[0.1, 0.2], [0.3, 0.1]])
        assert per_task.is_task_dependent() and not per_task.is_machine_dependent()
        assert per_machine.is_machine_dependent() and not per_machine.is_task_dependent()
        assert not general.is_task_dependent() and not general.is_machine_dependent()

    def test_uniform_is_both_task_and_machine_dependent(self):
        f = FailureModel.uniform(3, 3, 0.1)
        assert f.is_task_dependent()
        assert f.is_machine_dependent()

    def test_worst_case_attempts(self):
        f = FailureModel([[0.1, 0.5], [0.0, 0.2]])
        assert np.allclose(f.worst_case_attempts(), [2.0, 1.25])

    def test_round_trip_serialization(self):
        f = FailureModel([[0.1, 0.2], [0.3, 0.4]])
        clone = FailureModel.from_dict(f.to_dict())
        assert np.allclose(clone.rates, f.rates)
