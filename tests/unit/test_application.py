"""Unit tests for repro.core.application."""

from __future__ import annotations

import pytest

from repro.core.application import Application, from_edges, in_tree, linear_chain
from repro.core.types import TypeAssignment
from repro.exceptions import InvalidApplicationError


class TestConstruction:
    def test_chain_constructor(self):
        app = Application.chain(TypeAssignment([0, 1, 0]))
        assert app.num_tasks == 3
        assert app.num_edges == 2
        assert app.is_chain()

    def test_single_task(self):
        app = Application(TypeAssignment([0]))
        assert app.num_tasks == 1
        assert app.is_chain()
        assert app.sinks() == [0]
        assert app.sources() == [0]

    def test_rejects_cycle(self):
        with pytest.raises(InvalidApplicationError):
            Application(TypeAssignment([0, 0, 0]), [(0, 1), (1, 2), (2, 0)])

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidApplicationError):
            Application(TypeAssignment([0, 0]), [(0, 0)])

    def test_rejects_fork(self):
        # Task 0 with two successors is a fork: physical products cannot split.
        with pytest.raises(InvalidApplicationError, match="fork"):
            Application(TypeAssignment([0, 0, 0]), [(0, 1), (0, 2)])

    def test_allows_join(self):
        app = Application(TypeAssignment([0, 0, 0]), [(0, 2), (1, 2)])
        assert app.predecessors(2) == (0, 1)
        assert app.successor(0) == 2

    def test_rejects_unknown_task_in_edge(self):
        with pytest.raises(InvalidApplicationError):
            Application(TypeAssignment([0, 0]), [(0, 5)])

    def test_names_length_checked(self):
        with pytest.raises(InvalidApplicationError):
            Application(TypeAssignment([0, 0]), [(0, 1)], names=["only-one"])

    def test_task_objects(self):
        app = Application(TypeAssignment([0, 1]), [(0, 1)], names=["grip", "glue"])
        assert app[0].name == "grip"
        assert app[1].type_index == 1
        assert str(app[0]) == "grip"


class TestStructureQueries:
    def test_chain_order_and_topological(self):
        app = linear_chain(5, num_types=2)
        assert app.chain_order() == (0, 1, 2, 3, 4)
        assert app.topological_order() == (0, 1, 2, 3, 4)
        assert app.reverse_topological_order() == (4, 3, 2, 1, 0)

    def test_chain_order_rejected_for_tree(self):
        tree = in_tree([2, 2], num_types=2)
        with pytest.raises(InvalidApplicationError):
            tree.chain_order()

    def test_successor_and_predecessors_chain(self):
        app = linear_chain(4, num_types=2)
        assert app.successor(0) == 1
        assert app.successor(3) is None
        assert app.predecessors(0) == ()
        assert app.predecessors(2) == (1,)

    def test_unknown_task_raises(self):
        app = linear_chain(3, num_types=1)
        with pytest.raises(InvalidApplicationError):
            app.successor(9)
        with pytest.raises(InvalidApplicationError):
            app.predecessors(9)

    def test_sources_and_sinks_for_tree(self):
        tree = in_tree([2, 3], num_types=2, shared_tail_length=2)
        # 2 + 3 branch tasks + 2 tail tasks = 7 tasks, one sink.
        assert tree.num_tasks == 7
        assert len(tree.sinks()) == 1
        assert len(tree.sources()) == 2
        assert tree.is_in_tree()
        assert not tree.is_chain()

    def test_depth_from_sink_chain(self):
        app = linear_chain(4, num_types=1)
        depth = app.depth_from_sink()
        assert depth == {0: 3, 1: 2, 2: 1, 3: 0}

    def test_tasks_of_type(self):
        app = Application.chain(TypeAssignment([0, 1, 0, 1, 0]))
        assert app.tasks_of_type(0) == [0, 2, 4]
        assert app.tasks_of_type(1) == [1, 3]

    def test_type_of(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        assert [app.type_of(i) for i in range(3)] == [0, 1, 2]

    def test_is_chain_false_for_disconnected(self):
        app = Application(TypeAssignment([0, 0]), [])
        assert not app.is_chain()
        assert len(app.sinks()) == 2

    def test_graph_returns_copy(self):
        app = linear_chain(3, num_types=1)
        graph = app.graph
        graph.add_edge(2, 0)
        # The application itself must be unchanged.
        assert app.num_edges == 2


class TestConstructors:
    def test_linear_chain_with_num_types(self):
        app = linear_chain(6, num_types=3)
        assert app.num_types == 3
        assert app.num_tasks == 6

    def test_linear_chain_with_explicit_types(self):
        app = linear_chain(3, types=[1, 1, 0])
        assert list(app.types) == [1, 1, 0]

    def test_linear_chain_defaults_to_unique_types(self):
        app = linear_chain(4)
        assert app.num_types == 4

    def test_linear_chain_rejects_both_arguments(self):
        with pytest.raises(InvalidApplicationError):
            linear_chain(3, num_types=2, types=[0, 0, 1])

    def test_linear_chain_rejects_mismatched_types_length(self):
        with pytest.raises(InvalidApplicationError):
            linear_chain(3, types=[0, 1])

    def test_from_edges(self):
        app = from_edges([0, 1, 0], [(0, 1), (1, 2)])
        assert app.is_chain()

    def test_in_tree_structure(self):
        tree = in_tree([1, 1, 1], num_types=2, shared_tail_length=1)
        assert tree.num_tasks == 4
        join = tree.sinks()[0]
        assert len(tree.predecessors(join)) == 3

    def test_in_tree_validation(self):
        with pytest.raises(InvalidApplicationError):
            in_tree([], num_types=1)
        with pytest.raises(InvalidApplicationError):
            in_tree([0, 2], num_types=1)
        with pytest.raises(InvalidApplicationError):
            in_tree([2, 2], num_types=1, shared_tail_length=0)


class TestSerialization:
    def test_round_trip_chain(self):
        app = linear_chain(5, num_types=2)
        clone = Application.from_dict(app.to_dict())
        assert clone.num_tasks == app.num_tasks
        assert list(clone.types) == list(app.types)
        assert clone.is_chain()

    def test_round_trip_tree(self):
        tree = in_tree([2, 2], num_types=3, shared_tail_length=2)
        clone = Application.from_dict(tree.to_dict())
        assert clone.num_tasks == tree.num_tasks
        assert sorted(clone.graph.edges) == sorted(tree.graph.edges)

    def test_round_trip_names(self):
        app = Application(TypeAssignment([0, 1]), [(0, 1)], names=["a", "b"])
        clone = Application.from_dict(app.to_dict())
        assert [t.name for t in clone.tasks] == ["a", "b"]
