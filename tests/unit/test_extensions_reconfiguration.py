"""Unit tests for the reconfiguration-cost extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Application, FailureModel, Mapping, Platform, ProblemInstance, TypeAssignment, period
from repro.exceptions import ReproError
from repro.extensions import (
    ReconfigurationAwareHeuristic,
    ReconfigurationModel,
    machine_periods_with_reconfiguration,
    period_with_reconfiguration,
    specialization_break_even,
)
from repro.heuristics import get_heuristic
from tests.helpers import make_random_instance


class TestReconfigurationModel:
    def test_switch_counts_cycle_policy(self):
        model = ReconfigurationModel(setup_time=50.0, policy="cycle")
        assert model.switches(1) == 0
        assert model.switches(2) == 2
        assert model.switches(3) == 3

    def test_switch_counts_amortized_policy(self):
        model = ReconfigurationModel(setup_time=50.0, policy="amortized")
        assert model.switches(1) == 0
        assert model.switches(2) == 1
        assert model.switches(4) == 3

    def test_validation(self):
        with pytest.raises(ReproError):
            ReconfigurationModel(setup_time=-1.0)
        with pytest.raises(ReproError):
            ReconfigurationModel(setup_time=1.0, policy="bogus")


class TestPeriodWithReconfiguration:
    def test_specialized_mapping_pays_nothing(self, small_instance):
        mapping = Mapping([0, 1, 0, 1], 3)  # one type per machine
        model = ReconfigurationModel(setup_time=500.0)
        assert period_with_reconfiguration(small_instance, mapping, model) == pytest.approx(
            period(small_instance, mapping)
        )

    def test_general_mapping_pays_per_switch(self, small_instance):
        mapping = Mapping([0, 0, 0, 0], 3)  # both types on machine 0
        model = ReconfigurationModel(setup_time=100.0, policy="cycle")
        plain = period(small_instance, mapping)
        with_setup = period_with_reconfiguration(small_instance, mapping, model)
        assert with_setup == pytest.approx(plain + 2 * 100.0)

    def test_machine_periods_vector(self, small_instance):
        mapping = Mapping([0, 0, 1, 1], 3)
        model = ReconfigurationModel(setup_time=10.0)
        periods = machine_periods_with_reconfiguration(small_instance, mapping, model)
        assert periods.shape == (3,)
        assert periods[2] == 0.0
        # Machine 0 runs types {0, 1} -> 2 switches; machine 1 runs {0, 1} too.
        assert periods[0] > 0 and periods[1] > 0

    def test_zero_setup_equals_plain_period(self):
        inst = make_random_instance(10, 3, 4, seed=1)
        mapping = get_heuristic("H4").solve(inst).mapping
        model = ReconfigurationModel(setup_time=0.0)
        assert period_with_reconfiguration(inst, mapping, model) == pytest.approx(
            period(inst, mapping)
        )


class TestReconfigurationAwareHeuristic:
    def test_zero_setup_may_mix_types(self):
        # With no setup cost and a single very fast machine, mixing types on
        # that machine can be optimal; the heuristic must at least produce a
        # valid general mapping.
        inst = make_random_instance(10, 3, 4, seed=2)
        heuristic = ReconfigurationAwareHeuristic(ReconfigurationModel(0.0))
        result = heuristic.solve(inst)
        result.mapping.validate(inst, "general")
        assert result.period > 0
        assert "period_with_reconfiguration" in result.metadata

    def test_large_setup_produces_specialized_mapping(self):
        inst = make_random_instance(12, 3, 6, seed=3)
        heuristic = ReconfigurationAwareHeuristic(ReconfigurationModel(1e6))
        result = heuristic.solve(inst)
        # A prohibitive setup cost forces one type per machine.
        assert result.mapping.satisfies_specialized(list(inst.application.types))

    def test_metadata_reports_reconfiguration_period(self):
        inst = make_random_instance(8, 2, 3, seed=4)
        model = ReconfigurationModel(setup_time=250.0)
        result = ReconfigurationAwareHeuristic(model).solve(inst)
        reported = result.metadata["period_with_reconfiguration"]
        assert reported == pytest.approx(
            period_with_reconfiguration(inst, result.mapping, model)
        )
        assert reported >= result.period - 1e-9


class TestBreakEven:
    def test_break_even_zero_when_specialized_already_wins(self):
        inst = make_random_instance(10, 2, 5, seed=5)
        specialized = get_heuristic("H4w").solve(inst).mapping
        # Use the same mapping as the "general" candidate: specialized wins
        # (ties) already at zero setup cost.
        assert specialization_break_even(inst, specialized, specialized) == 0.0

    def test_break_even_positive_when_general_mapping_is_better_unpenalised(self):
        # Construct a case where mixing types on the single fast machine is
        # better without setup costs: 2 types, machine 0 fast for both.
        app = Application.chain(TypeAssignment([0, 1]))
        w = np.array([[100.0, 500.0], [100.0, 500.0]])
        inst = ProblemInstance(app, Platform(w), FailureModel.failure_free(2, 2))
        general = Mapping([0, 0], 2)  # both tasks on the fast machine
        specialized = Mapping([0, 1], 2)
        assert period(inst, general) < period(inst, specialized)
        threshold = specialization_break_even(inst, general, specialized)
        assert threshold > 0.0
        # Above the threshold the specialized mapping wins.
        above = ReconfigurationModel(threshold * 1.01)
        assert period_with_reconfiguration(inst, general, above) >= period(
            inst, specialized
        ) - 1e-6
        # Below it, the general mapping still wins.
        below = ReconfigurationModel(threshold * 0.5)
        assert period_with_reconfiguration(inst, general, below) < period(inst, specialized)

    def test_break_even_monotone_in_policy(self):
        app = Application.chain(TypeAssignment([0, 1]))
        w = np.array([[100.0, 500.0], [100.0, 500.0]])
        inst = ProblemInstance(app, Platform(w), FailureModel.failure_free(2, 2))
        general = Mapping([0, 0], 2)
        specialized = Mapping([0, 1], 2)
        cycle = specialization_break_even(inst, general, specialized, policy="cycle")
        amortized = specialization_break_even(inst, general, specialized, policy="amortized")
        # The amortized policy charges fewer switches, so the general mapping
        # survives up to a larger setup time.
        assert amortized >= cycle - 1e-9
