"""Unit tests for the experiment layer (figures, runner, reporting)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import FIGURES, figure_ids, figure_report, run_figure, run_scenario, summary_line
from repro.experiments.reporting import aggregate_results
from repro.experiments.runner import MIP_LABEL, OTO_LABEL
from repro.generators import ScenarioConfig


class TestFigureCatalogue:
    def test_all_eight_figures_present(self):
        assert figure_ids() == [f"fig{i}" for i in range(5, 13)]

    def test_paper_parameters(self):
        assert FIGURES["fig5"].scenario.num_machines == 50
        assert FIGURES["fig5"].scenario.num_types == 5
        assert FIGURES["fig6"].scenario.num_machines == 10
        assert FIGURES["fig7"].scenario.num_machines == 100
        assert FIGURES["fig8"].scenario.f_range == (0.0, 0.10)
        assert FIGURES["fig9"].scenario.task_dependent_failures
        assert FIGURES["fig9"].scenario.include_one_to_one
        assert FIGURES["fig9"].scenario.repetitions == 100
        assert FIGURES["fig10"].scenario.include_milp
        assert FIGURES["fig11"].normalize_to == "MIP"
        assert FIGURES["fig12"].scenario.num_machines == 9
        assert FIGURES["fig12"].scenario.num_types == 4

    def test_default_repetitions_match_paper(self):
        for fig in ("fig5", "fig6", "fig7", "fig8", "fig10", "fig12"):
            assert FIGURES[fig].scenario.repetitions == 30

    def test_every_figure_has_expected_shape_note(self):
        for spec in FIGURES.values():
            assert spec.expected_shape


class TestRunner:
    def _tiny_scenario(self, **overrides) -> ScenarioConfig:
        defaults = dict(
            name="tiny",
            num_machines=4,
            num_types=2,
            sweep="tasks",
            sweep_values=(4, 6),
            repetitions=2,
            heuristics=("H2", "H4w"),
        )
        defaults.update(overrides)
        return ScenarioConfig(**defaults)

    def test_run_scenario_produces_series_per_heuristic(self):
        result = run_scenario(self._tiny_scenario(), seed=1)
        assert set(result.series) == {"H2", "H4w"}
        for series in result.series.values():
            assert series.x_values == [4, 6]
            assert series.point(4).count == 2
        assert result.elapsed_seconds > 0
        assert result.x_name == "n"

    def test_run_scenario_reproducible(self):
        a = run_scenario(self._tiny_scenario(), seed=7)
        b = run_scenario(self._tiny_scenario(), seed=7)
        assert a.series["H4w"].samples == b.series["H4w"].samples

    def test_run_scenario_with_milp(self):
        result = run_scenario(self._tiny_scenario(), seed=2, include_milp=True)
        assert MIP_LABEL in result.series
        # The exact optimum is never above any heuristic on the same instance.
        for x in result.series[MIP_LABEL].x_values:
            for label in ("H2", "H4w"):
                pairs = zip(
                    result.series[label].samples[x], result.series[MIP_LABEL].samples[x]
                )
                for heuristic_value, optimum in pairs:
                    assert heuristic_value >= optimum - 1e-6

    def test_run_scenario_with_one_to_one(self):
        scenario = self._tiny_scenario(
            num_machines=8,
            sweep_values=(4,),
            task_dependent_failures=True,
        )
        result = run_scenario(scenario, seed=3, include_one_to_one=True)
        assert OTO_LABEL in result.series
        assert result.series[OTO_LABEL].point(4).count == 2

    def test_normalization(self):
        result = run_scenario(
            self._tiny_scenario(), seed=4, include_milp=True, normalize_to=MIP_LABEL
        )
        normalized = result.reported_series()
        assert MIP_LABEL not in normalized
        for series in normalized.values():
            for x in series.x_values:
                assert series.point(x).mean >= 1.0 - 1e-9

    def test_normalize_to_missing_curve_rejected(self):
        with pytest.raises(ExperimentError):
            run_scenario(self._tiny_scenario(), seed=5, normalize_to="MIP")

    def test_normalization_report_requires_existing_reference(self):
        result = run_scenario(self._tiny_scenario(), seed=6)
        with pytest.raises(ExperimentError):
            result.normalization_report("MIP")

    def test_run_figure_scaled_down(self):
        result = run_figure(
            "fig6", seed=0, repetitions=1, max_points=2, include_milp=False
        )
        assert result.figure_id == "fig6"
        assert set(result.series) == set(FIGURES["fig6"].scenario.heuristics)
        assert len(result.scenario.sweep_values) == 2
        assert result.scenario.repetitions == 1

    def test_run_figure_unknown_id(self):
        with pytest.raises(ExperimentError):
            run_figure("fig99")

    def test_table_and_csv_output(self):
        result = run_scenario(self._tiny_scenario(), seed=8)
        table = result.to_table()
        assert "H4w" in table and "H2" in table
        csv_text = result.to_csv()
        assert csv_text.startswith("n,")
        assert "H4w_mean" in csv_text


class TestReporting:
    def test_summary_line(self):
        result = run_scenario(
            ScenarioConfig(
                name="tiny",
                num_machines=4,
                num_types=2,
                sweep="tasks",
                sweep_values=(4,),
                repetitions=1,
                heuristics=("H4w",),
                description="tiny scenario",
            ),
            seed=0,
            figure_id="fig5",
        )
        line = summary_line(result)
        assert "fig5" in line and "tiny scenario" in line

    def test_figure_report_contains_table_and_factors(self):
        scenario = ScenarioConfig(
            name="tiny",
            num_machines=4,
            num_types=2,
            sweep="tasks",
            sweep_values=(4,),
            repetitions=2,
            heuristics=("H2", "H4w"),
            include_milp=True,
        )
        result = run_scenario(scenario, seed=1, figure_id="fig10")
        report = figure_report(result)
        assert "== fig10 ==" in report
        assert "Aggregate factors relative to MIP" in report
        assert "H4w" in report


class TestBetweenSeedAggregation:
    def _runs(self):
        scenario = ScenarioConfig(
            name="tiny",
            num_machines=4,
            num_types=2,
            sweep="tasks",
            sweep_values=(4, 6),
            repetitions=2,
            heuristics=("H2", "H4w"),
        )
        return [
            run_scenario(scenario, seed=seed, figure_id="custom")
            for seed in (0, 1, 2)
        ]

    def test_between_reduces_each_seed_to_one_sample(self):
        results = self._runs()
        pooled = aggregate_results(results, ci="pooled")
        between = aggregate_results(results, ci="between")
        for label in between.series:
            for x in between.series[label].x_values:
                pooled_point = pooled.series[label].point(x)
                between_point = between.series[label].point(x)
                # 3 seeds x 2 reps pooled vs 3 seed-level means.
                assert pooled_point.count == 6
                assert between_point.count == 3
                # Equal per-seed counts: the point estimate is unchanged.
                assert between_point.mean == pytest.approx(pooled_point.mean)
                # Each between-sample is that seed's mean.
                per_seed = [
                    result.series[label].point(x).mean for result in results
                ]
                assert between.series[label].samples[x] == pytest.approx(per_seed)

    def test_between_cis_have_seed_level_degrees_of_freedom(self):
        results = self._runs()
        between = aggregate_results(results, ci="between")
        label = next(iter(between.series))
        x = between.series[label].x_values[0]
        point = between.series[label].point(x)
        # Student half-width over 3 seed means: finite and symmetric.
        assert point.ci_low <= point.mean <= point.ci_high

    def test_unknown_ci_mode_rejected(self):
        results = self._runs()
        with pytest.raises(ExperimentError, match="CI mode"):
            aggregate_results(results, ci="bogus")
