"""Unit tests for the command-line interface."""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading

import pytest

from repro.cli import CAMPAIGN_MANIFEST, STORE_ENV_VAR, build_parser, main
from repro.experiments import ResultStore
from repro.service import SolveService, direct_response, normalize_request


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_run_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestListCommand:
    def test_lists_every_figure(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for fig in ("fig5", "fig9", "fig12"):
            assert fig in output


class TestSolveCommand:
    def test_solve_prints_all_heuristics(self, capsys):
        code = main(["solve", "--tasks", "6", "--types", "2", "--machines", "3", "--seed", "1"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("H1", "H2", "H3", "H4", "H4w", "H4f"):
            assert name in output
        assert "period(ms)" in output

    def test_solve_with_milp(self, capsys):
        code = main(
            [
                "solve",
                "--tasks",
                "5",
                "--types",
                "2",
                "--machines",
                "3",
                "--seed",
                "2",
                "--milp",
            ]
        )
        assert code == 0
        assert "MIP" in capsys.readouterr().out

    def test_solve_high_failures(self, capsys):
        code = main(
            [
                "solve",
                "--tasks",
                "6",
                "--types",
                "2",
                "--machines",
                "4",
                "--seed",
                "3",
                "--high-failures",
            ]
        )
        assert code == 0


class TestRunCommand:
    def test_run_figure_table(self, capsys):
        code = main(
            [
                "run",
                "fig6",
                "--repetitions",
                "1",
                "--max-points",
                "2",
                "--seed",
                "0",
                "--no-milp",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "== fig6 ==" in output
        assert "H4w" in output

    def test_run_figure_csv(self, capsys):
        code = main(
            [
                "run",
                "fig6",
                "--repetitions",
                "1",
                "--max-points",
                "2",
                "--seed",
                "0",
                "--no-milp",
                "--csv",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.startswith("n,")
        assert "H2_mean" in output

    def test_run_with_optional_curves(self, capsys):
        code = main(
            [
                "run", "fig6", "--repetitions", "1", "--max-points", "2",
                "--seed", "0", "--no-milp", "--optional-curves",
            ]
        )
        assert code == 0
        assert "H4ls" in capsys.readouterr().out

    def test_run_cells_engine(self, capsys):
        code = main(
            [
                "run", "fig6", "--repetitions", "1", "--max-points", "2",
                "--seed", "0", "--no-milp", "--engine", "cells",
            ]
        )
        assert code == 0
        assert "== fig6 ==" in capsys.readouterr().out

    def test_run_resume_requires_store(self, monkeypatch, capsys):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert main(["run", "fig6", "--repetitions", "1", "--resume"]) == 2
        assert "needs a store" in capsys.readouterr().err


def _campaign_args(store) -> list[str]:
    return [
        "campaign", "fig6", "fig10", "--store", str(store),
        "--repetitions", "1", "--max-points", "2", "--no-milp", "--seed", "0",
    ]


class TestCampaignCommands:
    def test_campaign_runs_figures_into_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        assert main(_campaign_args(store_dir)) == 0
        output = capsys.readouterr().out
        assert "fig6" in output and "fig10" in output
        assert "campaign: 2 figure run(s)" in output
        assert (store_dir / CAMPAIGN_MANIFEST).exists()
        store = ResultStore(store_dir)
        assert store.load_result("fig6").figure_id == "fig6"
        assert store.load_result("fig10").figure_id == "fig10"

    def test_resume_completes_without_recomputation(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        capsys.readouterr()
        assert main(["resume", "--store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert "campaign: 2 figure run(s)" in output

    def test_resume_without_manifest_rejected(self, tmp_path, capsys):
        store_dir = tmp_path / "empty-store"
        store_dir.mkdir()
        assert main(["resume", "--store", str(store_dir)]) == 2
        assert "campaign" in capsys.readouterr().err

    def test_export_catalog_and_figures(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        capsys.readouterr()
        assert main(["export", "--store", str(store_dir)]) == 0
        catalog = capsys.readouterr().out
        assert "fig6" in catalog and "fig10" in catalog and "True" in catalog
        assert main(["export", "--store", str(store_dir), "fig6", "--csv"]) == 0
        assert capsys.readouterr().out.startswith("n,")

    def test_store_env_var_fallback(self, tmp_path, capsys, monkeypatch):
        store_dir = tmp_path / "env-store"
        monkeypatch.setenv(STORE_ENV_VAR, str(store_dir))
        assert (
            main(
                [
                    "campaign", "fig6", "--repetitions", "1", "--max-points", "2",
                    "--no-milp", "--seed", "0",
                ]
            )
            == 0
        )
        assert (store_dir / CAMPAIGN_MANIFEST).exists()

    def test_campaign_manifest_records_settings(self, tmp_path):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        manifest = json.loads((store_dir / CAMPAIGN_MANIFEST).read_text())
        assert manifest["figures"] == ["fig6", "fig10"]
        assert manifest["repetitions"] == 1
        assert manifest["no_milp"] is True
        assert manifest["seeds"] == [0]

    def test_multi_seed_campaign_stores_every_seed(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(
            [
                "campaign", "fig6", "--store", str(store_dir), "--seeds", "3..4",
                "--repetitions", "1", "--max-points", "2", "--no-milp",
            ]
        )
        assert code == 0
        assert "campaign: 2 figure run(s)" in capsys.readouterr().out
        store = ResultStore(store_dir)
        assert store.load_result("fig6", seed=3).seed == 3
        assert store.load_result("fig6", seed=4).seed == 4

    def test_seed_and_seeds_are_mutually_exclusive(self, tmp_path, capsys):
        code = main(
            [
                "campaign", "fig6", "--store", str(tmp_path / "s"),
                "--seed", "1", "--seeds", "0..2",
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_resume_reads_legacy_scalar_seed_manifest(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        capsys.readouterr()
        manifest = json.loads((store_dir / CAMPAIGN_MANIFEST).read_text())
        manifest["seed"] = manifest.pop("seeds")[0]  # pre-multi-seed layout
        (store_dir / CAMPAIGN_MANIFEST).write_text(json.dumps(manifest))
        assert main(["resume", "--store", str(store_dir)]) == 0
        assert "campaign: 2 figure run(s)" in capsys.readouterr().out

    def test_export_aggregate_seeds_csv(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(
            [
                "campaign", "fig6", "--store", str(store_dir), "--seeds", "0,1",
                "--repetitions", "1", "--max-points", "2", "--no-milp",
            ]
        )
        capsys.readouterr()
        code = main(
            ["export", "--store", str(store_dir), "fig6", "--aggregate", "seeds", "--csv"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.startswith("n,")
        # Two seeds x one repetition pooled per point.
        assert ",2\r\n" in output or ",2\n" in output
        code = main(
            ["export", "--store", str(store_dir), "fig6", "--aggregate", "seeds"]
        )
        assert code == 0
        assert "aggregated over 2 seeds" in capsys.readouterr().out

    def test_export_aggregate_needs_figures(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        capsys.readouterr()
        assert main(["export", "--store", str(store_dir), "--aggregate", "seeds"]) == 2
        assert "figure names" in capsys.readouterr().err

    def test_export_scenario_hash_filter(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(
            [
                "campaign", "fig6", "--store", str(store_dir), "--seeds", "0,1",
                "--repetitions", "1", "--max-points", "2", "--no-milp",
            ]
        )
        capsys.readouterr()
        store = ResultStore(store_dir)
        stored_hash = store.runs()[0].scenario_hash
        code = main(
            [
                "export", "--store", str(store_dir), "fig6",
                "--aggregate", "seeds", "--scenario-hash", stored_hash, "--csv",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("n,")
        code = main(
            [
                "export", "--store", str(store_dir), "fig6",
                "--aggregate", "seeds", "--scenario-hash", "deadbeef0000",
            ]
        )
        assert code == 2
        assert "no stored run" in capsys.readouterr().err

    def test_export_aggregate_rejects_seed_filter(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        capsys.readouterr()
        code = main(
            [
                "export", "--store", str(store_dir), "fig6",
                "--aggregate", "seeds", "--seed", "0",
            ]
        )
        assert code == 2
        assert "--seed" in capsys.readouterr().err

    def test_export_between_seed_ci(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(
            [
                "campaign", "fig6", "--store", str(store_dir), "--seeds", "0,1",
                "--repetitions", "2", "--max-points", "2", "--no-milp",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "export", "--store", str(store_dir), "fig6",
                "--aggregate", "seeds", "--ci", "between", "--csv",
            ]
        )
        assert code == 0
        between = capsys.readouterr().out
        # One sample per *seed* per point (2), not per repetition (4).
        assert ",2\n" in between or ",2\r\n" in between
        code = main(
            [
                "export", "--store", str(store_dir), "fig6",
                "--aggregate", "seeds", "--ci", "between",
            ]
        )
        assert code == 0
        assert "between-seed CIs" in capsys.readouterr().out

    def test_export_ci_requires_aggregate(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(_campaign_args(store_dir))
        capsys.readouterr()
        code = main(
            ["export", "--store", str(store_dir), "fig6", "--ci", "between"]
        )
        assert code == 2
        assert "--aggregate" in capsys.readouterr().err


def _plan_args(out_dir, extra=()) -> list[str]:
    return [
        "shard", "plan", "fig6", "--seeds", "0..1", "--shards", "2", "--by", "block",
        "--out", str(out_dir), "--repetitions", "1", "--max-points", "2", "--no-milp",
        *extra,
    ]


class TestShardCommands:
    def test_plan_writes_campaign_and_shard_files(self, tmp_path, capsys):
        out = tmp_path / "plans"
        assert main(_plan_args(out)) == 0
        output = capsys.readouterr().out
        assert "2 shard(s)" in output
        assert (out / "campaign.json").exists()
        assert (out / "shard_0.json").exists() and (out / "shard_1.json").exists()

    def test_shard_run_and_merge_match_single_host(self, tmp_path, capsys):
        out = tmp_path / "plans"
        main(_plan_args(out))
        for k in (0, 1):
            code = main(
                [
                    "shard", "run", str(out / f"shard_{k}.json"),
                    "--store", str(tmp_path / f"shard{k}"),
                ]
            )
            assert code == 0
        capsys.readouterr()
        code = main(
            [
                "store", "merge", "--store", str(tmp_path / "merged"),
                str(tmp_path / "shard0"), str(tmp_path / "shard1"),
            ]
        )
        assert code == 0
        assert "cell(s) added" in capsys.readouterr().out
        # The merged store serves export exactly like a single-host store.
        single = tmp_path / "single"
        main(
            [
                "campaign", "fig6", "--store", str(single), "--seeds", "0..1",
                "--repetitions", "1", "--max-points", "2", "--no-milp",
            ]
        )
        capsys.readouterr()
        main(["export", "--store", str(tmp_path / "merged"), "fig6", "--seed", "0", "--csv"])
        merged_csv = capsys.readouterr().out
        main(["export", "--store", str(single), "fig6", "--seed", "0", "--csv"])
        assert merged_csv == capsys.readouterr().out

    def test_shard_run_from_campaign_manifest_coordinates(self, tmp_path, capsys):
        out = tmp_path / "plans"
        main(_plan_args(out))
        capsys.readouterr()
        code = main(
            [
                "shard", "run", str(out / "campaign.json"), "--shard", "1/2",
                "--store", str(tmp_path / "s1"),
            ]
        )
        assert code == 0
        assert "shard 1/2" in capsys.readouterr().out

    def test_shard_run_rejects_bad_coordinates(self, tmp_path, capsys):
        out = tmp_path / "plans"
        main(_plan_args(out))
        capsys.readouterr()
        code = main(
            [
                "shard", "run", str(out / "campaign.json"), "--shard", "two/4",
                "--store", str(tmp_path / "s"),
            ]
        )
        assert code == 2
        assert "K/N" in capsys.readouterr().err

    def test_store_merge_missing_source_fails(self, tmp_path, capsys):
        code = main(
            ["store", "merge", "--store", str(tmp_path / "m"), str(tmp_path / "ghost")]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_shard_status_tracks_progress(self, tmp_path, capsys):
        out = tmp_path / "plans"
        main(_plan_args(out))
        main(
            [
                "shard", "run", str(out / "shard_0.json"),
                "--store", str(tmp_path / "shard0"),
            ]
        )
        capsys.readouterr()
        # Shard 1 has not run: non-zero exit, its units are missing.
        code = main(
            [
                "shard", "status", str(out),
                str(tmp_path / "shard0"), str(tmp_path / "shard1"),
            ]
        )
        assert code == 1
        output = capsys.readouterr().out
        assert "0/2" in output and "1/2" in output
        assert "pending" in output

        main(
            [
                "shard", "run", str(out / "shard_1.json"),
                "--store", str(tmp_path / "shard1"),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "shard", "status", str(out),
                str(tmp_path / "shard0"), str(tmp_path / "shard1"),
            ]
        )
        assert code == 0
        assert "campaign complete" in capsys.readouterr().out

    def test_shard_status_against_one_merged_store(self, tmp_path, capsys):
        out = tmp_path / "plans"
        main(_plan_args(out))
        for k in (0, 1):
            main(
                [
                    "shard", "run", str(out / f"shard_{k}.json"),
                    "--store", str(tmp_path / f"shard{k}"),
                ]
            )
        main(
            [
                "store", "merge", "--store", str(tmp_path / "merged"),
                str(tmp_path / "shard0"), str(tmp_path / "shard1"),
            ]
        )
        capsys.readouterr()
        code = main(["shard", "status", str(out), str(tmp_path / "merged")])
        assert code == 0
        assert "campaign complete" in capsys.readouterr().out

    def test_shard_status_store_count_mismatch(self, tmp_path, capsys):
        out = tmp_path / "plans"
        main(_plan_args(out))
        capsys.readouterr()
        code = main(
            [
                "shard", "status", str(out),
                str(tmp_path / "a"), str(tmp_path / "b"), str(tmp_path / "c"),
            ]
        )
        assert code == 2
        assert "one store per shard" in capsys.readouterr().err


class TestServiceCommands:
    def test_serve_parser_accepts_service_knobs(self):
        args = build_parser().parse_args(
            [
                "serve", "--port", "0", "--window-ms", "1.5",
                "--max-batch", "16", "--cache-dir", "cache/",
                "--cache-capacity", "64",
            ]
        )
        assert args.port == 0
        assert args.window_ms == 1.5
        assert args.max_batch == 16
        assert args.cache_dir == "cache/"

    def test_request_round_trips_against_a_live_service(self, capsys):
        with _live_service() as url:
            code = main(
                [
                    "request", "--url", url, "--heuristic", "H4w",
                    "--tasks", "8", "--types", "2", "--machines", "4",
                    "--seed", "5",
                ]
            )
            assert code == 0
            response = json.loads(capsys.readouterr().out)
            reference = direct_response(
                normalize_request(
                    {
                        "heuristic": "H4w",
                        "application": {"tasks": 8, "types": 2},
                        "platform": {"machines": 4},
                        "options": {"seed": 5},
                    }
                )
            )
            assert response["assignment"] == reference["assignment"]
            assert response["period"] == reference["period"]

            # Same request again: served from the cache.
            code = main(
                [
                    "request", "--url", url, "--heuristic", "H4w",
                    "--tasks", "8", "--types", "2", "--machines", "4",
                    "--seed", "5",
                ]
            )
            assert code == 0
            assert json.loads(capsys.readouterr().out)["cached"] == "memory"

    def test_request_reports_unreachable_service(self, capsys):
        code = main(["request", "--url", "http://127.0.0.1:1", "--tasks", "4"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err


@contextlib.contextmanager
def _live_service():
    """A SolveService on a background event loop (for client-side tests)."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    service = SolveService(port=0, window=0.001)
    asyncio.run_coroutine_threadsafe(service.start(), loop).result(timeout=10)
    try:
        yield service.url
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
