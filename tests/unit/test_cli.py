"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_run_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestListCommand:
    def test_lists_every_figure(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for fig in ("fig5", "fig9", "fig12"):
            assert fig in output


class TestSolveCommand:
    def test_solve_prints_all_heuristics(self, capsys):
        code = main(["solve", "--tasks", "6", "--types", "2", "--machines", "3", "--seed", "1"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("H1", "H2", "H3", "H4", "H4w", "H4f"):
            assert name in output
        assert "period(ms)" in output

    def test_solve_with_milp(self, capsys):
        code = main(
            [
                "solve",
                "--tasks",
                "5",
                "--types",
                "2",
                "--machines",
                "3",
                "--seed",
                "2",
                "--milp",
            ]
        )
        assert code == 0
        assert "MIP" in capsys.readouterr().out

    def test_solve_high_failures(self, capsys):
        code = main(
            [
                "solve",
                "--tasks",
                "6",
                "--types",
                "2",
                "--machines",
                "4",
                "--seed",
                "3",
                "--high-failures",
            ]
        )
        assert code == 0


class TestRunCommand:
    def test_run_figure_table(self, capsys):
        code = main(
            [
                "run",
                "fig6",
                "--repetitions",
                "1",
                "--max-points",
                "2",
                "--seed",
                "0",
                "--no-milp",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "== fig6 ==" in output
        assert "H4w" in output

    def test_run_figure_csv(self, capsys):
        code = main(
            [
                "run",
                "fig6",
                "--repetitions",
                "1",
                "--max-points",
                "2",
                "--seed",
                "0",
                "--no-milp",
                "--csv",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert output.startswith("n,")
        assert "H2_mean" in output
