"""Unit tests for simulation support modules: metrics, trace, rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.metrics import SimulationMetrics
from repro.simulation.rng import RandomStreamFactory, generator_from, spawn_generators
from repro.simulation.trace import SimulationTrace, TraceEventType


def _metrics(
    finished: int = 10,
    makespan: float = 1000.0,
    executions=(20, 12),
    losses=(5, 2),
    busy=(800.0, 900.0),
) -> SimulationMetrics:
    executions = np.asarray(executions)
    losses = np.asarray(losses)
    return SimulationMetrics(
        finished_products=finished,
        makespan=makespan,
        raw_products_injected=np.asarray([20, 0]),
        executions=executions,
        successes=executions - losses,
        losses=losses,
        machine_busy_time=np.asarray(busy),
        machine_executions=np.asarray([20, 12]),
        output_times=np.linspace(100.0, makespan, finished),
    )


class TestSimulationMetrics:
    def test_empirical_failure_rates(self):
        m = _metrics()
        assert m.empirical_failure_rates[0] == pytest.approx(0.25)
        assert m.empirical_failure_rates[1] == pytest.approx(2 / 12)

    def test_failure_rate_nan_when_never_executed(self):
        m = _metrics(executions=(0, 12), losses=(0, 2))
        assert np.isnan(m.empirical_failure_rates[0])

    def test_products_per_output(self):
        m = _metrics()
        assert m.empirical_products_per_output[0] == pytest.approx(2.0)

    def test_products_per_output_nan_without_outputs(self):
        m = _metrics(finished=0)
        assert np.all(np.isnan(m.empirical_products_per_output))

    def test_machine_periods_and_period(self):
        m = _metrics()
        assert m.empirical_machine_periods[1] == pytest.approx(90.0)
        assert m.empirical_period == pytest.approx(90.0)

    def test_throughput(self):
        m = _metrics()
        assert m.empirical_throughput == pytest.approx(10 / 1000.0)
        assert np.isnan(_metrics(makespan=0.0).empirical_throughput)

    def test_steady_state_interval(self):
        m = _metrics(finished=10, makespan=1000.0)
        # Outputs are evenly spaced, so the steady-state interval equals the spacing.
        spacing = (1000.0 - 100.0) / 9
        assert m.steady_state_output_interval == pytest.approx(spacing)

    def test_steady_state_interval_needs_enough_outputs(self):
        m = _metrics(finished=2)
        assert np.isnan(m.steady_state_output_interval)

    def test_summary_keys(self):
        summary = _metrics().summary()
        assert {"finished_products", "empirical_period", "total_losses"} <= set(summary)


class TestTrace:
    def test_record_and_query(self):
        trace = SimulationTrace()
        trace.record(1.0, TraceEventType.RAW_INJECTED, task=0, product=1)
        trace.record(2.0, TraceEventType.PRODUCT_LOST, task=0, machine=1, product=1)
        assert len(trace) == 2
        assert trace[0].event is TraceEventType.RAW_INJECTED
        assert trace.count(TraceEventType.PRODUCT_LOST) == 1
        assert trace.filter(TraceEventType.PRODUCT_LOST)[0].machine == 1
        assert [r.time for r in trace] == [1.0, 2.0]

    def test_max_records_cap(self):
        trace = SimulationTrace(max_records=2)
        for i in range(5):
            trace.record(float(i), TraceEventType.RAW_INJECTED)
        assert len(trace) == 2


class TestRandomStreams:
    def test_generator_from_accepts_everything(self):
        assert isinstance(generator_from(None), np.random.Generator)
        assert isinstance(generator_from(3), np.random.Generator)
        gen = np.random.default_rng(0)
        assert generator_from(gen) is gen

    def test_spawn_generators_independent_and_reproducible(self):
        a = spawn_generators(42, 3)
        b = spawn_generators(42, 3)
        assert len(a) == 3
        for ga, gb in zip(a, b):
            assert ga.random() == gb.random()
        # Different children produce different draws.
        fresh = spawn_generators(42, 2)
        assert fresh[0].random() != fresh[1].random()

    def test_spawn_generators_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_stream_factory_deterministic_per_label(self):
        f1 = RandomStreamFactory(7)
        f2 = RandomStreamFactory(7)
        assert f1.stream("fig5", 3).random() == f2.stream("fig5", 3).random()
        # Order of requests does not matter.
        g_late = RandomStreamFactory(7)
        g_late.stream("other", 0)
        assert g_late.stream("fig5", 3).random() == f2.stream("fig5", 3).random()

    def test_stream_factory_distinct_labels(self):
        factory = RandomStreamFactory(7)
        assert factory.stream("a", 0).random() != factory.stream("b", 0).random()
        assert factory.stream("a", 0).random() != factory.stream("a", 1).random()

    def test_streams_iterator(self):
        factory = RandomStreamFactory(1)
        streams = list(factory.streams("x", 4))
        assert len(streams) == 4

    def test_root_entropy_exposed(self):
        assert RandomStreamFactory(123).root_entropy == 123
