"""Unit tests for the Section-6.1 MIP (model construction and solve)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FailureModel, Platform, ProblemInstance
from repro.core.application import Application
from repro.core.types import TypeAssignment
from repro.exact.bruteforce import bruteforce_optimal
from repro.exact.milp import build_milp_model, solve_specialized_milp
from repro.exceptions import InfeasibleProblemError
from tests.helpers import make_random_instance


class TestModelConstruction:
    def test_variable_layout(self, small_instance):
        model = build_milp_model(small_instance)
        n, p, m = 4, 2, 3
        assert model.num_tasks == n
        assert model.num_types == p
        assert model.num_machines == m
        # a (n*m) + t (m*p) + x (n) + y (n*m) + K
        assert model.num_variables == n * m + m * p + n + n * m + 1
        assert model.k_offset == model.num_variables - 1
        # Index helpers are consistent with the offsets.
        assert model.a_index(0, 0) == 0
        assert model.t_index(0, 0) == n * m
        assert model.x_index(0) == n * m + m * p
        assert model.y_index(0, 0) == n * m + m * p + n

    def test_constraint_count(self, small_instance):
        model = build_milp_model(small_instance)
        n, p, m = 4, 2, 3
        # (3): n, (4): m, (5): n*m, (6): n*m, (7): m, (8): 3*n*m
        expected = n + m + n * m + n * m + m + 3 * n * m
        assert model.num_constraint_rows == expected

    def test_integrality_flags(self, small_instance):
        model = build_milp_model(small_instance)
        n, p, m = 4, 2, 3
        assert model.integrality.sum() == n * m + m * p
        assert model.integrality[model.k_offset] == 0
        assert model.integrality[model.x_index(0)] == 0

    def test_bounds(self, small_instance):
        model = build_milp_model(small_instance)
        assert np.all(model.lower[model.x_index(0) : model.x_index(0) + 4] == 1.0)
        assert np.all(model.max_x >= 1.0)
        # x upper bounds equal the MAXx big-M values.
        for i in range(4):
            assert model.upper[model.x_index(i)] == pytest.approx(model.max_x[i])

    def test_max_x_monotone_along_chain(self, small_instance):
        model = build_milp_model(small_instance)
        max_x = model.max_x
        assert max_x[0] >= max_x[1] >= max_x[2] >= max_x[3] >= 1.0

    def test_infeasible_when_more_types_than_machines(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        inst = ProblemInstance(
            app, Platform.homogeneous(3, 2, 10.0), FailureModel.failure_free(3, 2)
        )
        with pytest.raises(InfeasibleProblemError):
            build_milp_model(inst)


class TestSolve:
    def test_matches_bruteforce_on_small_instances(self):
        for seed in range(4):
            inst = make_random_instance(5, 2, 3, seed=seed)
            milp = solve_specialized_milp(inst)
            brute = bruteforce_optimal(inst, "specialized")
            assert milp.is_optimal
            assert milp.period == pytest.approx(brute.period, rel=1e-6)

    def test_returns_valid_specialized_mapping(self, small_instance):
        result = solve_specialized_milp(small_instance)
        assert result.is_optimal
        result.mapping.validate(small_instance, "specialized")
        # Objective K and the analytic period of the mapping agree.
        assert result.objective == pytest.approx(result.period, rel=1e-4)

    def test_never_beaten_by_heuristics(self):
        from repro.heuristics import PAPER_HEURISTICS, get_heuristic

        inst = make_random_instance(7, 3, 4, seed=11)
        milp = solve_specialized_milp(inst)
        assert milp.is_optimal
        for name in PAPER_HEURISTICS:
            result = get_heuristic(name).solve(inst, np.random.default_rng(0))
            assert result.period >= milp.period - 1e-6

    def test_failure_free_single_type(self):
        # Every task same type, no failures, homogeneous machines: the MIP
        # must find the balanced split.
        app = Application.chain(TypeAssignment([0, 0, 0, 0]))
        inst = ProblemInstance(
            app, Platform.homogeneous(4, 2, 100.0), FailureModel.failure_free(4, 2)
        )
        result = solve_specialized_milp(inst)
        assert result.is_optimal
        assert result.period == pytest.approx(200.0, rel=1e-6)

    def test_time_limit_reported_as_failure(self):
        inst = make_random_instance(14, 3, 6, seed=12)
        result = solve_specialized_milp(inst, time_limit=1e-3)
        # Either HiGHS got lucky instantly (unlikely) or it reports a failure;
        # in both cases the call must not raise.
        assert result.status in {"optimal", "failed", "infeasible"}
        if not result.is_optimal:
            assert result.mapping is None
            assert result.period == float("inf")

    def test_solve_time_recorded(self, small_instance):
        result = solve_specialized_milp(small_instance)
        assert result.solve_time >= 0.0
