"""Unit tests for the persistent result store (JSON-lines + index)."""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import run_scenario
from repro.experiments.store import CellRecord, ResultStore, RunMeta
from repro.generators import ScenarioConfig


def _record(**overrides) -> CellRecord:
    defaults = dict(
        figure_id="figX",
        scenario_hash="abc123",
        seed=0,
        curve="H4w",
        sweep_value=10,
        repetitions=3,
        values=[1.0, 2.0, 3.0],
        failures=0,
    )
    defaults.update(overrides)
    return CellRecord(**defaults)


def _scenario(**overrides) -> ScenarioConfig:
    defaults = dict(
        name="store-test",
        num_machines=4,
        num_types=2,
        sweep="tasks",
        sweep_values=(4, 6),
        repetitions=2,
        heuristics=("H2", "H4w"),
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestCellRecord:
    def test_key(self):
        assert _record().key == ("figX", "abc123", 0, "H4w", 10)

    def test_value_count_must_match_repetitions(self):
        with pytest.raises(ExperimentError):
            _record(values=[1.0])


class TestStoreBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        record = _record()
        store.put_cell(record)
        assert store.get_cell("figX", "abc123", 0, "H4w", 10) == record
        assert store.has_cell("figX", "abc123", 0, "H4w", 10)
        assert not store.has_cell("figX", "abc123", 0, "H4w", 11)
        assert len(store) == 1

    def test_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_cell(_record())
        store.put_cell(_record(values=[9.0, 9.0, 9.0]))
        assert store.get_cell("figX", "abc123", 0, "H4w", 10).values == [9.0, 9.0, 9.0]
        assert len(store) == 1

    def test_persists_across_reopen(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 10) == _record()

    def test_nan_values_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put_cell(_record(curve="MIP", values=[1.0, float("nan"), 3.0], failures=1))
        back = store.get_cell("figX", "abc123", 0, "MIP", 10)
        assert math.isnan(back.values[1])
        assert back.failures == 1

    def test_meta_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        meta = RunMeta(
            figure_id="figX",
            scenario_hash="abc123",
            seed=0,
            scenario=_scenario().to_dict(),
            curves=["H2", "H4w"],
            normalize_to=None,
            elapsed_seconds=1.5,
        )
        store.put_meta(meta)
        assert store.get_meta("figX", "abc123", 0) == meta
        assert store.runs() == [meta]


class TestStoreRecovery:
    def test_index_rebuilt_from_scan_when_missing(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
            store.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        (tmp_path / "s" / "index.json").unlink()
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 2
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 20).values == [4.0, 5.0, 6.0]

    def test_corrupt_index_falls_back_to_scan(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
        (tmp_path / "s" / "index.json").write_text("{not json", encoding="utf-8")
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 1

    def test_stale_index_offsets_trigger_a_rebuild(self, tmp_path):
        # index.json parses fine but its offsets are wrong (e.g. copied
        # from another store, or the records file was rewritten under
        # it).  Lookups must rebuild from the JSONL instead of raising a
        # parse error or returning garbage.
        with ResultStore(tmp_path / "s") as store:
            for sweep_value in (10, 20, 30):
                store.put_cell(_record(sweep_value=sweep_value))
        index_path = tmp_path / "s" / "index.json"
        raw = json.loads(index_path.read_text(encoding="utf-8"))
        raw["cells"] = {key: offset + 5 for key, offset in raw["cells"].items()}
        index_path.write_text(json.dumps(raw), encoding="utf-8")

        reopened = ResultStore(tmp_path / "s")
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 20) == _record(
            sweep_value=20
        )
        assert sorted(cell.sweep_value for cell in reopened.cells()) == [10, 20, 30]
        reopened.close()
        # The rebuild is persisted: a fresh open needs no further repair.
        repaired = json.loads(index_path.read_text(encoding="utf-8"))
        assert repaired["cells"] != raw["cells"]
        assert ResultStore(tmp_path / "s").get_cell(
            "figX", "abc123", 0, "H4w", 30
        ) == _record(sweep_value=30)

    def test_foreign_index_is_rebuilt_not_trusted(self, tmp_path):
        # An index whose offsets point at *valid but different* records
        # (two stores' files mixed up) must also be detected: the key
        # read back at the offset does not match the key looked up.
        with ResultStore(tmp_path / "a") as store:
            store.put_cell(_record(sweep_value=10))
            store.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        index_path = tmp_path / "a" / "index.json"
        raw = json.loads(index_path.read_text(encoding="utf-8"))
        # Swap the two cells' offsets: every entry points at a real,
        # parseable record — just the wrong one.
        (key_a, off_a), (key_b, off_b) = sorted(raw["cells"].items())
        raw["cells"] = {key_a: off_b, key_b: off_a}
        index_path.write_text(json.dumps(raw), encoding="utf-8")

        reopened = ResultStore(tmp_path / "a")
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 20).values == [
            4.0,
            5.0,
            6.0,
        ]
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 10) == _record(
            sweep_value=10
        )

    def test_unindexed_tail_is_recovered(self, tmp_path):
        # Simulate a run killed after appending but before reindexing: the
        # index covers a prefix, extra lines follow.
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
        extra = _record(sweep_value=20, values=[7.0, 8.0, 9.0])
        line = json.dumps(
            {
                "kind": "cell",
                "data": {
                    "figure_id": extra.figure_id,
                    "scenario_hash": extra.scenario_hash,
                    "seed": extra.seed,
                    "curve": extra.curve,
                    "sweep_value": extra.sweep_value,
                    "repetitions": extra.repetitions,
                    "values": extra.values,
                    "failures": extra.failures,
                },
            }
        )
        with open(tmp_path / "s" / "results.jsonl", "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        reopened = ResultStore(tmp_path / "s")
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 20) == extra

    def test_auto_flush_boundary_record_survives_a_crash(self, tmp_path):
        # The periodic index rewrite fires while putting the N-th record;
        # the index it persists must already know that record's key, or a
        # crash right after the rewrite makes the record invisible (the
        # reopen scan starts past it).  Simulate the crash by never
        # calling flush()/close() after the puts.
        from repro.experiments.store import _INDEX_EVERY

        store = ResultStore(tmp_path / "s")
        for sweep_value in range(_INDEX_EVERY):
            store.put_cell(_record(sweep_value=sweep_value))
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == _INDEX_EVERY
        assert reopened.get_cell(
            "figX", "abc123", 0, "H4w", _INDEX_EVERY - 1
        ) == _record(sweep_value=_INDEX_EVERY - 1)

    def test_torn_final_line_is_ignored(self, tmp_path):
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
        (tmp_path / "s" / "index.json").unlink()
        with open(tmp_path / "s" / "results.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"kind": "cell", "data": {"figure_id": "figX"')  # no newline
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 1

    def test_append_after_torn_line_does_not_merge(self, tmp_path):
        # A record appended after a torn line must start on a fresh line,
        # or a later full scan would drop both as one corrupt line.
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
        with open(tmp_path / "s" / "results.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # interrupted writer, no newline
        store = ResultStore(tmp_path / "s")
        store.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        assert store.get_cell("figX", "abc123", 0, "H4w", 20).values == [4.0, 5.0, 6.0]
        # The appended record survives a from-scratch scan too.
        store.close()
        (tmp_path / "s" / "index.json").unlink()
        rescanned = ResultStore(tmp_path / "s")
        assert len(rescanned) == 2
        assert rescanned.get_cell("figX", "abc123", 0, "H4w", 20) is not None

    def test_truncated_mid_record_reopens_and_keeps_prefix(self, tmp_path):
        # Regression: a kill that truncates the final JSONL line mid-record
        # (index already flushed past it) must reopen cleanly, keep every
        # complete record, and stay appendable.
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
            store.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        path = tmp_path / "s" / "results.jsonl"
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 17)  # cut into the final record's JSON
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 1
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 10) == _record()
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 20) is None
        reopened.put_cell(_record(sweep_value=30, values=[7.0, 8.0, 9.0]))
        reopened.close()
        (tmp_path / "s" / "index.json").unlink()
        rescanned = ResultStore(tmp_path / "s")
        assert len(rescanned) == 2
        assert rescanned.get_cell("figX", "abc123", 0, "H4w", 30).values == [7.0, 8.0, 9.0]

    def test_truncated_newline_recovers_complete_record(self, tmp_path):
        # A partial write can lose *only* the trailing newline: the final
        # line is complete JSON and must be recovered, not dropped.
        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
            store.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        path = tmp_path / "s" / "results.jsonl"
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 1)
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 2
        assert reopened.get_cell("figX", "abc123", 0, "H4w", 20).values == [4.0, 5.0, 6.0]
        # The recovered line is still open: the next append must not merge
        # into it, and a from-scratch rescan must see every record.
        reopened.put_cell(_record(sweep_value=30, values=[7.0, 8.0, 9.0]))
        reopened.close()
        (tmp_path / "s" / "index.json").unlink()
        rescanned = ResultStore(tmp_path / "s")
        assert len(rescanned) == 3

    def test_read_only_store_can_be_opened_and_closed(self, tmp_path):
        import os

        with ResultStore(tmp_path / "s") as store:
            store.put_cell(_record())
        os.chmod(tmp_path / "s", 0o555)
        try:
            with ResultStore(tmp_path / "s") as readonly:  # close() must not write
                assert readonly.get_cell("figX", "abc123", 0, "H4w", 10) == _record()
        finally:
            os.chmod(tmp_path / "s", 0o755)


class TestStoreMerge:
    def _meta(self, **overrides) -> RunMeta:
        defaults = dict(
            figure_id="figX",
            scenario_hash="abc123",
            seed=0,
            scenario=_scenario().to_dict(),
            curves=["H2", "H4w"],
            normalize_to=None,
            elapsed_seconds=1.0,
        )
        defaults.update(overrides)
        return RunMeta(**defaults)

    def test_disjoint_union(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put_cell(_record(sweep_value=10))
        with ResultStore(tmp_path / "b") as b:
            b.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        dest = ResultStore(tmp_path / "m")
        report = dest.merge(ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b"))
        assert report.cells_added == 2
        assert len(dest) == 2
        # Merged records survive a reopen (they are ordinary appends).
        assert ResultStore(tmp_path / "m").get_cell(
            "figX", "abc123", 0, "H4w", 20
        ).values == [4.0, 5.0, 6.0]

    def test_overlapping_identical_cells_are_idempotent(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put_cell(_record(sweep_value=10))
            a.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        dest = ResultStore(tmp_path / "m")
        first = dest.merge(ResultStore(tmp_path / "a"))
        again = dest.merge(ResultStore(tmp_path / "a"))
        assert first.cells_added == 2
        assert again.cells_added == 0
        assert again.cells_skipped == 2
        assert len(dest) == 2

    def test_identical_nan_cells_do_not_conflict(self, tmp_path):
        nan_record = _record(curve="MIP", values=[1.0, float("nan"), 3.0], failures=1)
        with ResultStore(tmp_path / "a") as a:
            a.put_cell(nan_record)
        dest = ResultStore(tmp_path / "m")
        dest.put_cell(nan_record)
        report = dest.merge(ResultStore(tmp_path / "a"))
        assert report.cells_skipped == 1

    def test_conflicting_cells_raise_and_write_nothing(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put_cell(_record(sweep_value=10))
            a.put_cell(_record(sweep_value=20, values=[4.0, 5.0, 6.0]))
        with ResultStore(tmp_path / "b") as b:
            b.put_cell(_record(sweep_value=20, values=[9.0, 9.0, 9.0]))
            b.put_cell(_record(sweep_value=30))
        dest = ResultStore(tmp_path / "m")
        with pytest.raises(ExperimentError) as excinfo:
            dest.merge(ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b"))
        # The error names the offending cell key, and the two-phase merge
        # left the destination untouched (not even the clean records).
        assert "figX|abc123|0|H4w|20" in str(excinfo.value)
        assert len(dest) == 0

    def test_merge_into_itself_rejected(self, tmp_path):
        dest = ResultStore(tmp_path / "m")
        with pytest.raises(ExperimentError):
            dest.merge(ResultStore(tmp_path / "m"))

    def test_empty_shard_merge(self, tmp_path):
        dest = ResultStore(tmp_path / "m")
        dest.put_cell(_record())
        report = dest.merge(ResultStore(tmp_path / "empty"))
        assert report.cells_added == 0
        assert report.metas_added == 0
        assert len(dest) == 1

    def test_meta_union_and_elapsed_max(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put_meta(self._meta(elapsed_seconds=1.0))
        with ResultStore(tmp_path / "b") as b:
            b.put_meta(self._meta(elapsed_seconds=5.0))
        dest = ResultStore(tmp_path / "m")
        report = dest.merge(ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b"))
        assert report.metas_added == 1
        assert dest.get_meta("figX", "abc123", 0).elapsed_seconds == 5.0
        # Re-merging the slower shard changes nothing (max is monotone).
        again = dest.merge(ResultStore(tmp_path / "b"))
        assert again.metas_added == 0 and again.metas_updated == 0
        assert dest.get_meta("figX", "abc123", 0).elapsed_seconds == 5.0

    def test_differing_meta_conflicts(self, tmp_path):
        with ResultStore(tmp_path / "a") as a:
            a.put_meta(self._meta())
        dest = ResultStore(tmp_path / "m")
        dest.put_meta(self._meta(curves=["H2", "H4w", "MIP"]))
        with pytest.raises(ExperimentError) as excinfo:
            dest.merge(ResultStore(tmp_path / "a"))
        assert "run header" in str(excinfo.value)


class TestExperimentResultRoundTrip:
    def test_save_and_load_result(self, tmp_path):
        result = run_scenario(_scenario(), seed=5, figure_id="figX")
        store = ResultStore(tmp_path / "s")
        store.save_result(result)
        loaded = store.load_result("figX")
        assert loaded.figure_id == result.figure_id
        assert loaded.scenario == result.scenario
        assert loaded.seed == result.seed
        assert loaded.milp_failures == result.milp_failures
        assert {l: s.samples for l, s in loaded.series.items()} == {
            l: s.samples for l, s in result.series.items()
        }
        assert loaded.normalized is None

    def test_round_trip_preserves_normalisation(self, tmp_path):
        result = run_scenario(
            _scenario(sweep_values=(4,)),
            seed=2,
            figure_id="figN",
            include_milp=True,
            normalize_to="MIP",
        )
        store = ResultStore(tmp_path / "s")
        store.save_result(result)
        loaded = store.load_result("figN")
        assert set(loaded.normalized) == set(result.normalized)
        for label in result.normalized:
            assert loaded.normalized[label].samples == result.normalized[label].samples

    def test_load_requires_complete_run(self, tmp_path):
        result = run_scenario(_scenario(), seed=5, figure_id="figX")
        store = ResultStore(tmp_path / "s")
        store.save_result(result)
        # Wipe the cell index entry for one block: loading must complain.
        key = next(k for k in store._cells if "|H4w|6" in k)
        del store._cells[key]
        with pytest.raises(ExperimentError):
            store.load_result("figX")

    def test_load_unknown_figure_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ExperimentError):
            store.load_result("fig404")

    def test_ambiguous_load_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for seed in (1, 2):
            store.save_result(run_scenario(_scenario(), seed=seed, figure_id="figX"))
        with pytest.raises(ExperimentError):
            store.load_result("figX")
        assert store.load_result("figX", seed=2).seed == 2

    def test_save_requires_seed(self, tmp_path):
        result = run_scenario(_scenario(), seed=None, figure_id="figX")
        store = ResultStore(tmp_path / "s")
        with pytest.raises(ExperimentError):
            store.save_result(result)

    def test_catalog(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.save_result(run_scenario(_scenario(), seed=5, figure_id="figX"))
        rows = store.catalog()
        assert len(rows) == 1
        assert rows[0]["figure"] == "figX"
        assert rows[0]["complete"] is True
        assert rows[0]["cells"] == "4/4"


class TestCompactConcurrency:
    """``compact()`` racing a concurrent reader / appender.

    A store is single-writer by contract, but compaction must stay safe
    against the concurrency the base class *does* promise: independent
    reader instances (other processes) heal their stale index after the
    records file is rewritten underneath them, and a same-process
    appender thread never corrupts the log or crashes the sweep — every
    record fully stored before a ``compact()`` starts survives it.
    """

    @staticmethod
    def _cell(i: int, generation: int = 0) -> CellRecord:
        return _record(
            sweep_value=i,
            values=[float(generation)] * 3,
        )

    def test_stale_reader_instance_heals_after_compact(self, tmp_path):
        writer = ResultStore(tmp_path / "s")
        for i in range(10):
            writer.put_cell(self._cell(i, generation=0))
        writer.flush()
        reader = ResultStore(tmp_path / "s")
        assert reader.get_cell("figX", "abc123", 0, "H4w", 3).values[0] == 0.0
        # Re-put every key and compact: the records file is rewritten and
        # every offset the reader cached is now wrong.
        for i in range(10):
            writer.put_cell(self._cell(i, generation=1))
        assert writer.compact() > 0
        # Point lookups and the bulk scan both heal and see generation 1.
        healed = reader.get_cell("figX", "abc123", 0, "H4w", 7)
        assert healed.values == [1.0, 1.0, 1.0]
        assert sorted(cell.sweep_value for cell in reader.cells()) == list(range(10))
        assert all(cell.values == [1.0, 1.0, 1.0] for cell in reader.cells())

    def test_reader_thread_racing_repeated_compacts(self, tmp_path):
        import threading

        writer = ResultStore(tmp_path / "s")
        for i in range(8):
            writer.put_cell(self._cell(i, generation=0))
        writer.flush()
        reader = ResultStore(tmp_path / "s")
        errors: list[BaseException] = []
        observed: set[float] = set()
        stop = threading.Event()

        def read_loop() -> None:
            try:
                while not stop.is_set():
                    cell = reader.get_cell("figX", "abc123", 0, "H4w", 5)
                    assert cell is not None
                    observed.add(cell.values[0])
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        thread = threading.Thread(target=read_loop)
        thread.start()
        try:
            for generation in range(1, 30):
                for i in range(8):
                    writer.put_cell(self._cell(i, generation=generation))
                writer.compact()
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        # Every observed value is a real generation, never torn garbage.
        assert observed <= {float(generation) for generation in range(30)}

    def test_appender_thread_racing_compact_loses_nothing(self, tmp_path):
        import threading

        store = ResultStore(tmp_path / "s")
        total = 200
        errors: list[BaseException] = []

        def append_loop() -> None:
            try:
                for i in range(total):
                    store.put_cell(self._cell(i))
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=append_loop)
        thread.start()
        compactions = 0
        try:
            while thread.is_alive():
                store.compact()
                compactions += 1
        finally:
            thread.join(timeout=30)
        assert not errors
        assert compactions > 0
        # Every completed put survived every interleaved compaction: the
        # instance lock keeps an append out of the compactor's file swap.
        assert {cell.sweep_value for cell in store.cells()} == set(range(total))
        store.flush()
        reopened = ResultStore(tmp_path / "s")
        assert {cell.sweep_value for cell in reopened.cells()} == set(range(total))
        for cell in reopened.cells():
            assert cell.values == [0.0, 0.0, 0.0]
