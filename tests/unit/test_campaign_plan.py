"""Unit tests for the distributed campaign subsystem (plan / worker / merge)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignManifest,
    ShardPlan,
    WorkUnit,
    expand_units,
    load_plan,
    load_shard_plans,
    merge_stores,
    parse_seed_spec,
    plan,
    run_shard,
    shard_status,
    status_rows,
    write_plans,
)
from repro.exceptions import ExperimentError
from repro.experiments import FIGURES, ResultStore


def _manifest(**overrides) -> CampaignManifest:
    defaults = dict(
        figures=("fig6",),
        seeds=(0, 1),
        repetitions=2,
        max_points=2,
    )
    defaults.update(overrides)
    return CampaignManifest(**defaults)


class TestSeedSpec:
    def test_single_int(self):
        assert parse_seed_spec(7) == (7,)
        assert parse_seed_spec("7") == (7,)

    def test_inclusive_range(self):
        assert parse_seed_spec("0..3") == (0, 1, 2, 3)

    def test_comma_mix(self):
        assert parse_seed_spec("0..2,7,9") == (0, 1, 2, 7, 9)

    def test_rejects_garbage_and_duplicates(self):
        with pytest.raises(ExperimentError):
            parse_seed_spec("x..3")
        with pytest.raises(ExperimentError):
            parse_seed_spec("3..1")
        with pytest.raises(ExperimentError):
            parse_seed_spec("1,1")
        with pytest.raises(ExperimentError):
            parse_seed_spec("")


class TestManifest:
    def test_validates_figures_and_seeds(self):
        with pytest.raises(ExperimentError):
            CampaignManifest(figures=("fig99",))
        with pytest.raises(ExperimentError):
            CampaignManifest(figures=("fig6",), seeds=())
        with pytest.raises(ExperimentError):
            CampaignManifest(figures=("fig6",), seeds=(1, 1))

    def test_round_trip(self):
        manifest = _manifest(no_milp=True, workers=4)
        assert CampaignManifest.from_dict(manifest.to_dict()) == manifest

    def test_from_dict_promotes_legacy_scalar_seed(self):
        legacy = _manifest().to_dict()
        del legacy["seeds"]
        legacy["seed"] = 3
        assert CampaignManifest.from_dict(legacy).seeds == (3,)

    def test_curves_follow_engine_series_order(self):
        manifest = _manifest(figures=("fig10",))
        curves = manifest.curves_for("fig10")
        assert curves[-1] == "MIP"  # fig10 runs the exact MIP last
        assert manifest.curves_for("fig6") == FIGURES["fig6"].scenario.heuristics

    def test_no_milp_drops_the_mip_curve(self):
        manifest = _manifest(figures=("fig10",), no_milp=True)
        assert "MIP" not in manifest.curves_for("fig10")

    def test_optional_curves_are_planned_when_asked(self):
        assert "H4ls" not in _manifest().curves_for("fig6")
        assert "H4ls" in _manifest(optional_curves=True).curves_for("fig6")


class TestPlanner:
    def test_units_cover_the_full_grid(self):
        manifest = _manifest()
        units = expand_units(manifest)
        scenario = manifest.scenario_for("fig6")
        expected = (
            len(manifest.seeds)
            * len(manifest.curves_for("fig6"))
            * len(scenario.sweep_values)
        )
        assert len(units) == expected
        assert len(set(units)) == len(units)

    @pytest.mark.parametrize("by", ["seed", "curve", "block"])
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_shards_partition_the_units(self, by, shards):
        manifest = _manifest()
        shard_plans = plan(manifest, shards=shards, by=by)
        assert len(shard_plans) == shards
        merged = [unit for shard in shard_plans for unit in shard.units]
        assert sorted(map(repr, merged)) == sorted(map(repr, expand_units(manifest)))

    def test_by_seed_keeps_whole_seeds_together(self):
        shard_plans = plan(_manifest(), shards=2, by="seed")
        for shard in shard_plans:
            assert len({unit.seed for unit in shard.units}) == 1

    def test_planning_is_deterministic(self):
        first = plan(_manifest(), shards=3, by="curve")
        second = plan(_manifest(), shards=3, by="curve")
        assert [s.units for s in first] == [s.units for s in second]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ExperimentError):
            plan(_manifest(), shards=0)
        with pytest.raises(ExperimentError):
            plan(_manifest(), shards=2, by="machine")
        with pytest.raises(ExperimentError):
            WorkUnit("fig6", 0, "H2", 10).group_key("machine")


class TestPlanFiles:
    def test_write_and_load_shard_plan(self, tmp_path):
        manifest = _manifest()
        written = write_plans(manifest, tmp_path / "plans", shards=2, by="block")
        assert len(written) == 2
        assert (tmp_path / "plans" / "campaign.json").exists()
        path, written_plan = written[1]
        assert written_plan == plan(manifest, shards=2, by="block")[1]
        shard = load_plan(path)
        assert isinstance(shard, ShardPlan)
        assert shard.index == 1 and shard.shards == 2
        assert shard.manifest == manifest
        assert shard.units == plan(manifest, shards=2, by="block")[1].units

    def test_load_campaign_manifest_with_coordinates(self, tmp_path):
        manifest = _manifest()
        write_plans(manifest, tmp_path / "plans", shards=2, by="block")
        campaign = tmp_path / "plans" / "campaign.json"
        shard = load_plan(campaign, shard=(0, 2))
        assert shard.units == plan(manifest, shards=2, by="block")[0].units
        # Planned-for-N campaign files refuse to run without coordinates.
        with pytest.raises(ExperimentError):
            load_plan(campaign)
        with pytest.raises(ExperimentError):
            load_plan(campaign, shard=(5, 2))

    def test_shard_file_rejects_wrong_coordinates(self, tmp_path):
        (path, _), _ = write_plans(_manifest(), tmp_path / "plans", shards=2, by="seed")
        with pytest.raises(ExperimentError):
            load_plan(path, shard=(1, 2))

    def test_shard_file_rejects_conflicting_axis(self, tmp_path):
        (path, _), _ = write_plans(_manifest(), tmp_path / "plans", shards=2, by="block")
        assert load_plan(path, by="block").by == "block"
        with pytest.raises(ExperimentError):
            load_plan(path, by="seed")

    def test_campaign_file_rejects_conflicting_axis(self, tmp_path):
        # Two hosts partitioning one campaign along different axes would
        # not tile its units; the recorded axis is pinned like the count.
        write_plans(_manifest(), tmp_path / "plans", shards=2, by="block")
        campaign = tmp_path / "plans" / "campaign.json"
        with pytest.raises(ExperimentError):
            load_plan(campaign, shard=(0, 2), by="seed")
        assert load_plan(campaign, shard=(0, 2), by="block").by == "block"
        # A hand-written manifest records no axis: --by is then free.
        plain = tmp_path / "plain.json"
        plain.write_text(json.dumps(_manifest().to_dict()), encoding="utf-8")
        assert load_plan(plain, shard=(1, 2), by="curve").by == "curve"

    def test_campaign_file_rejects_different_shard_count(self, tmp_path):
        # Accepting 0/8 against a 4-shard plan would silently re-partition
        # the campaign and leave units uncovered across the fleet.
        write_plans(_manifest(), tmp_path / "plans", shards=4, by="block")
        campaign = tmp_path / "plans" / "campaign.json"
        with pytest.raises(ExperimentError):
            load_plan(campaign, shard=(0, 8))
        assert load_plan(campaign, shard=(0, 4)).shards == 4

    def test_plain_campaign_manifest_defaults_to_single_shard(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(_manifest().to_dict()), encoding="utf-8")
        shard = load_plan(path)
        assert shard.shards == 1
        assert len(shard.units) == len(expand_units(_manifest()))


class TestWorker:
    def test_run_shard_is_resumable(self, tmp_path):
        shard = plan(_manifest(seeds=(0,)), shards=1, by="seed")[0]
        with ResultStore(tmp_path / "s") as store:
            first = run_shard(shard, store)
            assert first.computed == len(shard.units)
            assert first.skipped == 0
            again = run_shard(shard, store)
        assert again.computed == 0
        assert again.skipped == len(shard.units)

    def test_meta_carries_the_full_curve_list(self, tmp_path):
        # A shard holding one curve still records the whole run's curve
        # order, so the merged store can rebuild results.
        manifest = _manifest(seeds=(0,))
        shard = plan(manifest, shards=2, by="curve")[0]
        labels = {unit.curve for unit in shard.units}
        assert labels != set(manifest.curves_for("fig6"))  # a strict slice
        with ResultStore(tmp_path / "s") as store:
            run_shard(shard, store)
            meta = store.runs()[0]
        assert meta.curves == list(manifest.curves_for("fig6"))


class TestMergeStores:
    def test_missing_source_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            merge_stores(tmp_path / "m", [tmp_path / "nope"])

    def test_no_sources_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            merge_stores(tmp_path / "m", [])


class TestShardStatus:
    def test_status_classifies_done_partial_missing(self, tmp_path):
        manifest = _manifest(seeds=(0,))
        shards = plan(manifest, shards=2, by="block")
        with ResultStore(tmp_path / "s0") as store:
            run_shard(shards[0], store)
            status = shard_status(shards[0], store)
            assert status.units == len(shards[0].units)
            assert status.done == status.units
            assert status.partial == status.missing == 0
            assert status.complete

            # The other shard's units are absent from this store.
            other = shard_status(shards[1], store)
            assert other.done == 0
            assert other.missing == other.units
            assert not other.complete

    def test_status_counts_shallow_records_as_partial(self, tmp_path):
        manifest = _manifest(seeds=(0,))
        shard = plan(manifest, shards=1, by="seed")[0]
        shallow = dataclasses.replace(manifest, repetitions=1)
        with ResultStore(tmp_path / "s") as store:
            # Run at R=1, then check against the R=2 plan: every unit is
            # stored but too shallow to serve the deeper campaign.
            run_shard(plan(shallow, shards=1, by="seed")[0], store)
            status = shard_status(shard, store)
        assert status.partial == status.units
        assert status.done == 0 and status.missing == 0

    def test_load_shard_plans_from_planner_outputs(self, tmp_path):
        manifest = _manifest()
        written = write_plans(manifest, tmp_path / "plans", shards=2, by="block")
        by_dir = load_shard_plans(tmp_path / "plans")
        by_campaign = load_shard_plans(tmp_path / "plans" / "campaign.json")
        assert [s.units for s in by_dir] == [shard.units for _, shard in written]
        assert [s.units for s in by_campaign] == [s.units for s in by_dir]
        single = load_shard_plans(written[1][0])
        assert len(single) == 1
        assert single[0].units == written[1][1].units

    def test_load_shard_plans_rejects_a_planless_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ExperimentError, match="campaign.json"):
            load_shard_plans(tmp_path / "empty")

    def test_status_rows_pairs_stores_with_shards(self, tmp_path):
        manifest = _manifest(seeds=(0,))
        write_plans(manifest, tmp_path / "plans", shards=2, by="block")
        shards = load_shard_plans(tmp_path / "plans")
        with ResultStore(tmp_path / "s0") as store:
            run_shard(shards[0], store)
        rows = status_rows(shards, [tmp_path / "s0", tmp_path / "s1"])
        assert rows[0].complete and not rows[1].complete
        # A single store is checked against every shard (merged case).
        merged_rows = status_rows(shards, [tmp_path / "s0"])
        assert merged_rows[0].complete and not merged_rows[1].complete
        with pytest.raises(ExperimentError, match="one store per shard"):
            status_rows(shards, [tmp_path / "a", tmp_path / "b", tmp_path / "c"])
