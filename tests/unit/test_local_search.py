"""Unit tests for H4ls and the specialized local-search machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import MappingEvaluator
from repro.core import Mapping, MappingRule, evaluate
from repro.heuristics import available_heuristics, get_heuristic
from repro.heuristics.local_search import refine_specialized, specialized_move_mask
from tests.helpers import make_random_instance


class TestSpecializedMoveMask:
    def test_mask_allows_only_type_compatible_destinations(self, small_instance):
        # chain4: types [0, 1, 0, 1]; machines 0/1 host type 0, machine 2
        # hosts type 1.
        assignment = np.array([0, 2, 1, 2])
        mask = specialized_move_mask(small_instance, assignment)
        # Tasks of type 0 may go to machines 0 and 1 (dedicated to type 0)
        # but not to machine 2 (hosts type 1).
        assert mask[0].tolist() == [True, True, False]
        assert mask[2].tolist() == [True, True, False]
        # Tasks of type 1 may only go to machine 2.
        assert mask[1].tolist() == [False, False, True]
        assert mask[3].tolist() == [False, False, True]

    def test_empty_machines_accept_every_type(self, small_instance):
        assignment = np.array([0, 0, 0, 0])  # machines 1 and 2 empty
        mask = specialized_move_mask(small_instance, assignment)
        assert mask[:, 1].all() and mask[:, 2].all()

    def test_every_allowed_move_keeps_the_mapping_specialized(self):
        instance = make_random_instance(8, 3, 5, seed=3)
        mapping = get_heuristic("H4w").solve(instance).mapping
        assignment = mapping.as_array
        mask = specialized_move_mask(instance, assignment)
        for task in range(instance.num_tasks):
            for machine in range(instance.num_machines):
                if not mask[task, machine]:
                    continue
                moved = assignment.copy()
                moved[task] = machine
                Mapping(moved, instance.num_machines).validate(
                    instance, MappingRule.SPECIALIZED
                )


class TestRefineSpecialized:
    def test_refinement_never_increases_period(self):
        for seed in range(10):
            instance = make_random_instance(10, 3, 6, seed=seed)
            seed_mapping = get_heuristic("H4w").solve(instance).mapping
            refined, moves = refine_specialized(instance, seed_mapping)
            assert evaluate(instance, refined).period <= evaluate(
                instance, seed_mapping
            ).period
            assert moves >= 0

    def test_refined_mapping_is_a_local_optimum(self):
        instance = make_random_instance(9, 2, 5, seed=4)
        seed_mapping = get_heuristic("H4w").solve(instance).mapping
        refined, _ = refine_specialized(instance, seed_mapping)
        evaluator = MappingEvaluator(instance, refined)
        mask = specialized_move_mask(instance, refined.as_array)
        assert evaluator.best_move(allowed=mask) is None

    def test_max_moves_caps_the_descent(self):
        instance = make_random_instance(12, 2, 6, seed=8)
        # An intentionally bad (but specialized) seed: everything on the
        # machines H4f would pick — plenty of improving moves available.
        bad = get_heuristic("H4f").solve(instance).mapping
        _, unlimited = refine_specialized(instance, bad)
        if unlimited == 0:
            pytest.skip("seed mapping already locally optimal")
        _, capped = refine_specialized(instance, bad, max_moves=1)
        assert capped == 1


class TestBestMove:
    def test_best_move_matches_exhaustive_probe(self):
        instance = make_random_instance(7, 2, 4, seed=5)
        evaluator = MappingEvaluator(
            instance, get_heuristic("RoundRobin").solve(instance).mapping
        )
        move = evaluator.best_move()
        probes = {
            (task, machine): evaluator.candidate_period(task, machine)
            for task in range(instance.num_tasks)
            for machine in range(instance.num_machines)
        }
        best_value = min(probes.values())
        if best_value < evaluator.period * (1.0 - 1e-12):
            assert move is not None
            task, machine, value = move
            assert value == pytest.approx(best_value, rel=1e-12)
        else:
            assert move is None

    def test_allowed_mask_shape_checked(self, small_instance):
        evaluator = MappingEvaluator(small_instance, np.array([0, 2, 1, 2]))
        with pytest.raises(Exception):
            evaluator.best_move(allowed=np.ones((2, 2), dtype=bool))


class TestH4ls:
    def test_registered(self):
        assert "H4ls" in available_heuristics()

    def test_never_worse_than_h4w(self):
        for seed in range(15):
            instance = make_random_instance(10, 3, 6, seed=seed)
            h4w = get_heuristic("H4w").solve(instance)
            h4ls = get_heuristic("H4ls").solve(instance)
            assert h4ls.period <= h4w.period
            h4ls.mapping.validate(instance, MappingRule.SPECIALIZED)

    def test_strictly_improves_somewhere(self):
        improved = 0
        for seed in range(15):
            instance = make_random_instance(10, 3, 6, seed=seed)
            if (
                get_heuristic("H4ls").solve(instance).period
                < get_heuristic("H4w").solve(instance).period
            ):
                improved += 1
        assert improved > 0

    def test_metadata_reports_base_and_moves(self):
        instance = make_random_instance(10, 3, 6, seed=0)
        result = get_heuristic("H4ls").solve(instance)
        assert result.metadata["base"] == "H4w"
        assert result.metadata["moves"] >= 0
        assert result.period <= result.metadata["seed_period"]
