"""Unit tests of the CI benchmark regression gate.

The gate (``benchmarks/compare_to_baseline.py``) compares pytest-benchmark
medians *normalized by a calibration benchmark of the same run*, so the
check is machine-independent: only a key benchmark that slowed down
relative to the interpreter/numpy dispatch baseline trips it.  These
tests drive the comparison logic on synthetic runs — including the
synthetic >30% regression the acceptance criteria call for — and
round-trip the committed baseline file.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from benchmarks.compare_to_baseline import (
    CALIBRATION,
    DEFAULT_BASELINE_PATH,
    KEY_BENCHMARKS,
    OPTIONAL_BENCHMARKS,
    compare,
    evaluate,
    format_delta_table,
    load_medians,
    main,
    make_baseline,
)


def synthetic_results(scale: float = 1.0, **overrides: float) -> dict:
    """A fake pytest-benchmark dump; ``scale`` mimics machine speed."""
    medians = {CALIBRATION: 0.010 * scale}
    for index, name in enumerate(KEY_BENCHMARKS):
        medians[name] = (0.002 + 0.001 * index) * scale
    medians.update(overrides)
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"median": median}}
            for name, median in medians.items()
        ]
    }


class TestCompare:
    def test_identical_run_passes(self):
        results = synthetic_results()
        baseline = make_baseline(results)
        assert compare(results, baseline) == []

    def test_different_machine_speed_passes(self):
        # 5x slower machine, same ratios: normalization cancels it out.
        baseline = make_baseline(synthetic_results())
        assert compare(synthetic_results(scale=5.0), baseline) == []

    def test_synthetic_regression_over_threshold_fails(self):
        baseline = make_baseline(synthetic_results())
        slow = synthetic_results(**{KEY_BENCHMARKS[0]: 0.002 * 1.4})  # +40%
        failures = compare(slow, baseline)
        assert len(failures) == 1
        assert KEY_BENCHMARKS[0] in failures[0]

    def test_regression_within_threshold_passes(self):
        baseline = make_baseline(synthetic_results())
        slower = synthetic_results(**{KEY_BENCHMARKS[0]: 0.002 * 1.2})  # +20%
        assert compare(slower, baseline) == []

    def test_speedup_passes(self):
        baseline = make_baseline(synthetic_results())
        faster = synthetic_results(**{KEY_BENCHMARKS[0]: 0.0005})
        assert compare(faster, baseline) == []

    def test_missing_key_benchmark_fails(self):
        results = synthetic_results()
        baseline = make_baseline(results)
        trimmed = copy.deepcopy(results)
        trimmed["benchmarks"] = [
            bench
            for bench in trimmed["benchmarks"]
            if bench["fullname"] != KEY_BENCHMARKS[1]
        ]
        failures = compare(trimmed, baseline)
        assert failures and "missing" in failures[0]

    def test_missing_calibration_fails(self):
        baseline = make_baseline(synthetic_results())
        no_calibration = {
            "benchmarks": [
                bench
                for bench in synthetic_results()["benchmarks"]
                if bench["fullname"] != CALIBRATION
            ]
        }
        failures = compare(no_calibration, baseline)
        assert failures and "calibration" in failures[0]


class TestBaselineDocument:
    def test_make_baseline_requires_all_keys(self):
        with pytest.raises(KeyError):
            make_baseline({"benchmarks": []})

    def test_committed_baseline_covers_the_key_benchmarks(self):
        committed = json.loads(DEFAULT_BASELINE_PATH.read_text())
        assert committed["calibration"] == CALIBRATION
        recorded = set(committed["benchmarks"])
        assert recorded >= set(KEY_BENCHMARKS)
        # Anything beyond the required keys must be a declared optional.
        assert recorded - set(KEY_BENCHMARKS) <= set(OPTIONAL_BENCHMARKS)
        for entry in committed["benchmarks"].values():
            assert entry["normalized"] > 0.0

    def test_optional_benchmark_recorded_only_when_present(self):
        results = synthetic_results()
        assert OPTIONAL_BENCHMARKS[0] not in make_baseline(results)["benchmarks"]
        with_numba = synthetic_results(**{OPTIONAL_BENCHMARKS[0]: 0.001})
        entry = make_baseline(with_numba)["benchmarks"][OPTIONAL_BENCHMARKS[0]]
        assert entry["optional"] is True

    def test_load_medians(self):
        medians = load_medians(synthetic_results())
        assert medians[CALIBRATION] == 0.010


class TestDeltaRows:
    def test_rows_cover_every_baselined_benchmark(self):
        results = synthetic_results()
        rows, failures = evaluate(results, make_baseline(results))
        assert failures == []
        assert [row["name"] for row in rows] == list(KEY_BENCHMARKS)
        assert all(row["status"] == "ok" for row in rows)
        assert all(row["delta"] == 0.0 for row in rows)

    def test_missing_optional_is_skipped_not_failed(self):
        with_numba = synthetic_results(**{OPTIONAL_BENCHMARKS[0]: 0.001})
        baseline = make_baseline(with_numba)
        rows, failures = evaluate(synthetic_results(), baseline)
        assert failures == []
        by_name = {row["name"]: row for row in rows}
        assert by_name[OPTIONAL_BENCHMARKS[0]]["status"] == "skipped"

    def test_present_optional_gates_like_any_key(self):
        with_numba = synthetic_results(**{OPTIONAL_BENCHMARKS[0]: 0.001})
        baseline = make_baseline(with_numba)
        slow = synthetic_results(**{OPTIONAL_BENCHMARKS[0]: 0.002})  # +100%
        rows, failures = evaluate(slow, baseline)
        assert len(failures) == 1 and OPTIONAL_BENCHMARKS[0] in failures[0]

    def test_format_delta_table_lists_every_row(self):
        results = synthetic_results()
        rows, _ = evaluate(results, make_baseline(results))
        table = format_delta_table(rows)
        assert len(table.splitlines()) == len(rows) + 1
        for name in KEY_BENCHMARKS:
            assert name.split("::")[-1] in table


class TestCli:
    def write(self, path: Path, payload: dict) -> Path:
        path.write_text(json.dumps(payload))
        return path

    def test_update_then_gate_round_trip(self, tmp_path):
        results = self.write(tmp_path / "run.json", synthetic_results())
        baseline = tmp_path / "baseline.json"
        assert main([str(results), "--baseline", str(baseline), "--update"]) == 0
        assert main([str(results), "--baseline", str(baseline)]) == 0

    def test_cli_fails_on_regression(self, tmp_path):
        results = self.write(tmp_path / "run.json", synthetic_results())
        baseline = tmp_path / "baseline.json"
        main([str(results), "--baseline", str(baseline), "--update"])
        slow = self.write(
            tmp_path / "slow.json",
            synthetic_results(**{KEY_BENCHMARKS[2]: 10.0}),
        )
        assert main([str(slow), "--baseline", str(baseline)]) == 1

    def test_json_output_reports_status_and_rows(self, tmp_path, capsys):
        results = self.write(tmp_path / "run.json", synthetic_results())
        baseline = tmp_path / "baseline.json"
        main([str(results), "--baseline", str(baseline), "--update"])
        capsys.readouterr()
        assert main([str(results), "--baseline", str(baseline), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "pass"
        assert payload["failures"] == []
        assert {row["name"] for row in payload["benchmarks"]} == set(KEY_BENCHMARKS)

    def test_gate_prints_delta_table_on_success(self, tmp_path, capsys):
        results = self.write(tmp_path / "run.json", synthetic_results())
        baseline = tmp_path / "baseline.json"
        main([str(results), "--baseline", str(baseline), "--update"])
        capsys.readouterr()
        assert main([str(results), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "delta" in out and "passed" in out
