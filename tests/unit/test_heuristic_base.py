"""Unit tests for repro.heuristics.base (registry and AssignmentState)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FailureModel, Mapping, Platform, ProblemInstance, TypeAssignment
from repro.core.application import Application
from repro.exceptions import InfeasibleProblemError, ReproError
from repro.heuristics import (
    PAPER_HEURISTICS,
    available_heuristics,
    backward_task_order,
    get_heuristic,
)
from repro.heuristics.base import AssignmentState


class TestRegistry:
    def test_all_paper_heuristics_registered(self):
        names = available_heuristics()
        for paper_name in PAPER_HEURISTICS:
            assert paper_name in names

    def test_get_heuristic_case_insensitive(self):
        assert get_heuristic("h4w").name == "H4w"
        assert get_heuristic("H2").name == "H2"

    def test_get_heuristic_unknown(self):
        with pytest.raises(ReproError, match="unknown heuristic"):
            get_heuristic("H99")

    def test_get_heuristic_returns_fresh_instances(self):
        assert get_heuristic("H2") is not get_heuristic("H2")


class TestBackwardOrder:
    def test_chain_backward_order(self, small_instance):
        assert backward_task_order(small_instance) == (3, 2, 1, 0)


class TestHeuristicSolve:
    def test_infeasible_when_more_types_than_machines(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        platform = Platform.homogeneous(3, 2, 100.0)
        inst = ProblemInstance(app, platform, FailureModel.failure_free(3, 2))
        with pytest.raises(InfeasibleProblemError):
            get_heuristic("H4w").solve(inst)

    @pytest.mark.parametrize("name", PAPER_HEURISTICS)
    def test_every_heuristic_returns_valid_specialized_mapping(self, name, small_instance):
        result = get_heuristic(name).solve(small_instance, np.random.default_rng(0))
        result.mapping.validate(small_instance, "specialized")
        assert result.period > 0
        assert result.heuristic == name
        assert result.throughput == pytest.approx(1.0 / result.period)

    def test_result_metadata_iterations(self, small_instance):
        result = get_heuristic("H2").solve(small_instance)
        assert result.iterations >= 1
        assert "final_low" in result.metadata


class TestAssignmentState:
    def test_traversal_order_enforced(self, small_instance):
        state = AssignmentState(small_instance)
        with pytest.raises(ReproError):
            state.assign(0, 0)  # task 0 is the *last* task of the traversal

    def test_requires_permutation_order(self, small_instance):
        with pytest.raises(ReproError):
            AssignmentState(small_instance, order=(3, 2, 1))

    def test_downstream_demand_sink_is_one(self, small_instance):
        state = AssignmentState(small_instance)
        assert state.downstream_demand(3) == 1.0

    def test_downstream_demand_requires_assigned_successor(self, small_instance):
        state = AssignmentState(small_instance)
        with pytest.raises(ReproError):
            state.downstream_demand(0)

    def test_candidate_products_uses_candidate_failure(self, small_instance):
        state = AssignmentState(small_instance)
        expected = 1.0 / (1.0 - small_instance.f(3, 2))
        assert state.candidate_products(3, 2) == pytest.approx(expected)

    def test_assign_updates_loads_and_specialization(self, small_instance):
        state = AssignmentState(small_instance)
        state.assign(3, 1)
        assert state.machine_type[1] == small_instance.type_of(3)
        assert state.accumulated[1] > 0
        assert state.x[3] > 1.0
        # Machine 1 is now dedicated to type 1; task 2 has type 0.
        assert not state.is_eligible(2, 1)

    def test_assign_rejects_ineligible_machine(self, small_instance):
        state = AssignmentState(small_instance)
        state.assign(3, 1)  # machine 1 dedicated to type 1
        state.assign(2, 0)  # machine 0 dedicated to type 0
        with pytest.raises(ReproError):
            state.assign(1, 0)  # type 1 on a type-0 machine

    def test_free_machine_guard_keeps_feasibility(self):
        # 2 machines, 2 types: after dedicating machine 0 to type 0, the last
        # free machine must be reserved for type 1.
        app = Application.chain(TypeAssignment([1, 0, 0]))
        platform = Platform.homogeneous(3, 2, 100.0)
        inst = ProblemInstance(app, platform, FailureModel.failure_free(3, 2))
        state = AssignmentState(inst)
        # Backward order is (2, 1, 0) with types (0, 0, 1).
        state.assign(2, 0)
        # Machine 1 is the only free machine left and type 1 is still pending:
        # task 1 (type 0) must NOT be allowed to grab machine 1.
        assert state.eligible_machines(1) == [0]
        state.assign(1, 0)
        assert state.eligible_machines(0) == [1]
        state.assign(0, 1)
        mapping = state.to_mapping()
        mapping.validate(inst, "specialized")

    def test_to_mapping_requires_completion(self, small_instance):
        state = AssignmentState(small_instance)
        with pytest.raises(ReproError):
            state.to_mapping()

    def test_full_assignment_produces_mapping(self, small_instance):
        state = AssignmentState(small_instance)
        while not state.is_complete():
            task = state.next_task()
            machine = state.eligible_machines(task)[0]
            state.assign(task, machine)
        mapping = state.to_mapping()
        assert isinstance(mapping, Mapping)
        mapping.validate(small_instance, "specialized")
        assert state.next_task() is None
        assert state.remaining_tasks() == ()
