"""Unit tests of the batch solve layer.

The contract: for every heuristic implementing the
:class:`~repro.heuristics.BatchHeuristic` protocol, ``solve_batch`` over a
block of structurally identical instances returns, row for row, exactly
the assignment that ``solve_mapping`` produces on the corresponding
instance — bit for bit, including binary-search trajectories and
local-search move sequences.  A second battery covers the stacked
incremental evaluator, the provider-level wiring (auto threshold,
validation, fallback) and the hoisted binary-search period bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.incremental import MappingEvaluator, StackMappingEvaluator
from repro.exceptions import InvalidMappingError, MappingRuleViolation, ReproError
from repro.experiments.providers import (
    batch_solve_min_repetitions,
    CellBlock,
    HeuristicProvider,
    LocalSearchProvider,
)
from repro.generators import ScenarioConfig
from repro.heuristics import get_heuristic, supports_batch
from repro.heuristics.base import BatchAssignmentState
from repro.heuristics.binary_search import (
    RankBinarySearchHeuristic,
    worst_case_period_bound,
)
from repro.heuristics.local_search import (
    refine_specialized,
    refine_specialized_batch,
    specialized_move_mask,
    specialized_move_mask_batch,
)
from repro.simulation.rng import RandomStreamFactory

BATCHABLE = ("H2", "H3", "H4", "H4w", "H4f", "H4ls")


def make_block(
    *, num_machines=8, num_types=3, num_tasks=12, repetitions=5, seed=3,
    task_dependent_failures=False,
) -> CellBlock:
    scenario = ScenarioConfig(
        name="batch-unit",
        num_machines=num_machines,
        num_types=num_types,
        sweep="tasks",
        sweep_values=(num_tasks,),
        repetitions=repetitions,
        heuristics=("H4w",),
        task_dependent_failures=task_dependent_failures,
    )
    return CellBlock.sample(scenario, num_tasks, RandomStreamFactory(seed))


def sequential_assignments(name: str, block: CellBlock) -> np.ndarray:
    return np.stack(
        [
            get_heuristic(name).solve_mapping(instance)[0].as_array
            for instance in block.instances
        ]
    )


class TestProtocol:
    @pytest.mark.parametrize("name", BATCHABLE)
    def test_paper_heuristics_support_batch(self, name):
        assert supports_batch(get_heuristic(name))

    @pytest.mark.parametrize("name", ["H1", "RandomUniform", "RoundRobin", "H4-forward"])
    def test_non_batch_heuristics_are_flagged(self, name):
        assert not supports_batch(get_heuristic(name))


class TestSolveBatchEquivalence:
    @pytest.mark.parametrize("name", BATCHABLE)
    def test_matches_sequential_solves(self, name):
        block = make_block()
        batch = get_heuristic(name).solve_batch(block.instances)
        assert batch.shape == (block.repetitions, block.stack.num_tasks)
        assert (batch == sequential_assignments(name, block)).all()

    @pytest.mark.parametrize("name", ["H2", "H3", "H4", "H4ls"])
    def test_matches_sequential_when_machines_barely_suffice(self, name):
        # m close to p exercises the free-machine feasibility guard rows.
        block = make_block(num_machines=5, num_types=4, num_tasks=10, seed=11)
        batch = get_heuristic(name).solve_batch(block.instances)
        assert (batch == sequential_assignments(name, block)).all()

    @pytest.mark.parametrize("name", ["H2", "H3"])
    def test_matches_sequential_with_task_dependent_failures(self, name):
        block = make_block(task_dependent_failures=True, seed=7)
        batch = get_heuristic(name).solve_batch(block.instances)
        assert (batch == sequential_assignments(name, block)).all()

    def test_non_integer_bisection_matches_sequential(self):
        block = make_block(seed=5)
        batch_h = RankBinarySearchHeuristic(integer_search=False, rel_tol=1e-3)
        batch = batch_h.solve_batch(block.instances)
        expected = np.stack(
            [
                RankBinarySearchHeuristic(integer_search=False, rel_tol=1e-3)
                .solve_mapping(instance)[0]
                .as_array
                for instance in block.instances
            ]
        )
        assert (batch == expected).all()

    def test_single_row_block(self):
        block = make_block(repetitions=1)
        for name in ("H2", "H4w"):
            batch = get_heuristic(name).solve_batch(block.instances)
            assert (batch == sequential_assignments(name, block)).all()


class TestBatchAssignmentState:
    def test_rejects_empty_instance_list(self):
        with pytest.raises(ReproError):
            BatchAssignmentState([])

    def test_rejects_mismatched_structure(self):
        small = make_block(num_tasks=10, repetitions=2)
        big = make_block(num_tasks=12, repetitions=2)
        with pytest.raises(ReproError):
            BatchAssignmentState([small.instances[0], big.instances[0]])

    def test_subset_resets_progress(self):
        block = make_block()
        state = BatchAssignmentState(block.instances)
        rows = np.array([0, 2])
        clone = state.subset(rows)
        assert clone.num_rows == 2
        assert (clone.assignment == -1).all()
        assert (clone.types == state.types[rows]).all()
        assert (clone.pending_types == state.pending_types[rows]).all()


class TestStackMappingEvaluator:
    def setup_method(self):
        self.block = make_block(seed=9)
        self.seeds = get_heuristic("H4w").solve_batch(self.block.instances)

    def test_candidate_periods_matches_scalar_evaluators(self):
        stacked = StackMappingEvaluator(self.block.instances, self.seeds)
        for task in range(self.block.stack.num_tasks):
            candidates = stacked.candidate_periods(task)
            for repetition, instance in enumerate(self.block.instances):
                scalar = MappingEvaluator(instance, self.seeds[repetition])
                assert (
                    candidates[repetition] == scalar.candidate_periods(task)
                ).all(), (task, repetition)

    def test_best_moves_matches_scalar_best_move(self):
        stacked = StackMappingEvaluator(self.block.instances, self.seeds)
        allowed = specialized_move_mask_batch(self.block.instances, self.seeds)
        tasks, machines, has_move = stacked.best_moves(allowed=allowed)
        for repetition, instance in enumerate(self.block.instances):
            scalar = MappingEvaluator(instance, self.seeds[repetition])
            best = scalar.best_move(allowed=allowed[repetition])
            if best is None:
                assert not has_move[repetition]
            else:
                assert has_move[repetition]
                assert (tasks[repetition], machines[repetition]) == best[:2]

    def test_move_matches_scalar_move(self):
        stacked = StackMappingEvaluator(self.block.instances, self.seeds)
        scalar = MappingEvaluator(self.block.instances[1], self.seeds[1])
        task = 3
        machine = int(
            np.argmin(MappingEvaluator(
                self.block.instances[1], self.seeds[1]
            ).candidate_periods(task))
        )
        stacked.move(1, task, machine)
        scalar.move(task, machine)
        assert (stacked.assignment[1] == scalar.assignment).all()
        assert stacked.periods[1] == scalar.period
        assert (stacked.machine_periods[1] == scalar.machine_periods).all()

    def test_subset_carries_state_bit_for_bit(self):
        stacked = StackMappingEvaluator(self.block.instances, self.seeds)
        stacked.move(2, 1, int(np.argmin(stacked.candidate_periods(1)[2])))
        rows = np.array([2, 0])
        sub = stacked.subset(rows)
        assert sub.num_rows == 2
        assert (sub.assignment == stacked.assignment[rows]).all()
        assert (sub.machine_periods == stacked.machine_periods[rows]).all()
        assert (sub.periods == stacked.periods[rows]).all()
        # Probes on the subset are exactly the full stack's rows.
        for task in range(self.block.stack.num_tasks):
            assert (
                sub.candidate_periods(task) == stacked.candidate_periods(task)[rows]
            ).all(), task
        # Moves on the subset do not touch the parent.
        before = stacked.assignment
        sub.move(0, 0, int(np.argmin(sub.candidate_periods(0)[0])))
        assert (stacked.assignment == before).all()

    def test_subset_rejects_bad_rows(self):
        stacked = StackMappingEvaluator(self.block.instances, self.seeds)
        with pytest.raises(InvalidMappingError):
            stacked.subset(np.array([], dtype=np.int64))
        with pytest.raises(InvalidMappingError):
            stacked.subset(np.array([stacked.num_rows]))
        with pytest.raises(InvalidMappingError):
            stacked.subset(np.array([-1]))

    def test_rejects_bad_shapes(self):
        with pytest.raises(InvalidMappingError):
            StackMappingEvaluator(self.block.instances, self.seeds[:, :-1])
        with pytest.raises(InvalidMappingError):
            StackMappingEvaluator([], self.seeds)
        bad = self.seeds.copy()
        bad[0, 0] = self.block.stack.num_machines
        with pytest.raises(InvalidMappingError):
            StackMappingEvaluator(self.block.instances, bad)


class TestRefineBatch:
    def test_mask_matches_scalar(self):
        block = make_block(seed=13)
        seeds = get_heuristic("H4w").solve_batch(block.instances)
        batched = specialized_move_mask_batch(block.instances, seeds)
        for repetition, instance in enumerate(block.instances):
            assert (
                batched[repetition]
                == specialized_move_mask(instance, seeds[repetition])
            ).all()

    def test_refinement_matches_scalar_descents(self):
        block = make_block(num_machines=10, num_types=2, num_tasks=20, seed=2)
        seeds = get_heuristic("H4w").solve_batch(block.instances)
        refined, moves = refine_specialized_batch(block.instances, seeds)
        for repetition, instance in enumerate(block.instances):
            mapping, scalar_moves = refine_specialized(instance, seeds[repetition])
            assert moves[repetition] == scalar_moves
            assert (refined[repetition] == mapping.as_array).all()

    @pytest.mark.parametrize("cap", [0, 1])
    def test_move_cap_matches_scalar(self, cap):
        block = make_block(num_machines=10, num_types=2, num_tasks=20, seed=2)
        seeds = get_heuristic("H4w").solve_batch(block.instances)
        refined, moves = refine_specialized_batch(block.instances, seeds, max_moves=cap)
        assert (moves <= cap).all()
        for repetition, instance in enumerate(block.instances):
            mapping, scalar_moves = refine_specialized(
                instance, seeds[repetition], max_moves=cap
            )
            assert moves[repetition] == scalar_moves
            assert (refined[repetition] == mapping.as_array).all()


class TestPeriodBoundHoist:
    def test_prepare_caches_the_bound(self):
        block = make_block()
        instance = block.instances[0]
        heuristic = RankBinarySearchHeuristic()
        assert heuristic._period_bound is None
        heuristic.prepare(instance)
        assert heuristic._period_bound == worst_case_period_bound(instance)

    def test_solve_computes_the_bound_exactly_once(self, monkeypatch):
        import repro.heuristics.binary_search as module

        calls = []
        original = module.worst_case_period_bound

        def counting(instance):
            calls.append(instance)
            return original(instance)

        monkeypatch.setattr(module, "worst_case_period_bound", counting)
        instance = make_block().instances[0]
        module.RankBinarySearchHeuristic().solve_mapping(instance)
        assert len(calls) == 1

    def test_subclass_overriding_prepare_without_super_still_solves(self):
        # Pre-hoist subclasses treated prepare() as a plain hook; the
        # driver recomputes the bound lazily so they keep working.
        class LegacyH2(RankBinarySearchHeuristic):
            def prepare(self, instance):  # no super().prepare()
                w = instance.processing_times
                order = np.argsort(w, axis=0, kind="stable")
                ranks = np.empty_like(order)
                rows = np.arange(w.shape[0])
                for u in range(w.shape[1]):
                    ranks[order[:, u], u] = rows
                self._ranks = ranks

        instance = make_block().instances[0]
        legacy = LegacyH2().solve_mapping(instance)[0]
        modern = RankBinarySearchHeuristic().solve_mapping(instance)[0]
        assert (legacy.as_array == modern.as_array).all()

    def test_batch_prepare_caches_per_row_bounds(self):
        block = make_block()
        heuristic = RankBinarySearchHeuristic()
        heuristic.solve_batch(block.instances)
        expected = [worst_case_period_bound(inst) for inst in block.instances]
        assert heuristic._period_bounds is not None
        assert heuristic._period_bounds.tolist() == expected


class TestProviderWiring:
    def test_forced_paths_agree(self):
        block = make_block(repetitions=4)
        for name in ("H2", "H4w", "H4ls"):
            batched = HeuristicProvider(name, batch=True).solve_block(block)
            looped = HeuristicProvider(name, batch=False).solve_block(block)
            assert (batched == looped).all(), name

    def test_auto_threshold_switches_on_block_depth(self, monkeypatch):
        calls = []
        heuristic = get_heuristic("H4w")
        original = type(heuristic).solve_batch

        def counting(self, instances):
            calls.append(len(instances))
            return original(self, instances)

        monkeypatch.setattr(type(heuristic), "solve_batch", counting)
        small = make_block(repetitions=batch_solve_min_repetitions("H4w") - 1)
        HeuristicProvider("H4w").solve_block(small)
        assert calls == []
        big = make_block(repetitions=batch_solve_min_repetitions("H4w"))
        HeuristicProvider("H4w").solve_block(big)
        assert calls == [batch_solve_min_repetitions("H4w")]

    def test_fallback_for_heuristic_without_solve_batch(self):
        block = make_block(repetitions=batch_solve_min_repetitions("H4w"))
        provider = HeuristicProvider("H1")
        result = provider.evaluate_block(block)
        assert result.periods.shape == (block.repetitions,)
        assert np.isfinite(result.periods).all()

    def test_batch_results_are_rule_validated(self, monkeypatch):
        block = make_block(repetitions=4)
        heuristic = get_heuristic("H4w")

        def corrupted(self, instances):
            # Everything on machine 0: violates the specialized rule for
            # any block whose rows use more than one type.
            return np.zeros((len(instances), instances[0].num_tasks), dtype=np.int64)

        monkeypatch.setattr(type(heuristic), "solve_batch", corrupted)
        with pytest.raises(MappingRuleViolation):
            HeuristicProvider("H4w", batch=True).solve_block(block)

    def test_local_search_provider_paths_agree(self):
        block = make_block(num_machines=10, num_types=2, num_tasks=15, repetitions=4)
        batched = LocalSearchProvider("H4w", batch=True).evaluate_block(block)
        looped = LocalSearchProvider("H4w", batch=False).evaluate_block(block)
        assert (batched.periods == looped.periods).all()
