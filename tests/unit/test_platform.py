"""Unit tests for repro.core.platform."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.platform import Machine, Platform
from repro.core.types import TypeAssignment
from repro.exceptions import InvalidPlatformError


class TestMachine:
    def test_attributes(self):
        m = Machine(1, "robot-arm")
        assert m.index == 1
        assert str(m) == "robot-arm"
        assert str(Machine(0)) == "M1"

    def test_negative_index_rejected(self):
        with pytest.raises(InvalidPlatformError):
            Machine(-2)


class TestPlatformConstruction:
    def test_basic(self):
        p = Platform([[100.0, 200.0], [300.0, 400.0]])
        assert p.num_tasks == 2
        assert p.num_machines == 2
        assert len(p) == 2
        assert p.time(1, 0) == 300.0

    def test_rejects_non_positive_times(self):
        with pytest.raises(InvalidPlatformError):
            Platform([[100.0, 0.0]])
        with pytest.raises(InvalidPlatformError):
            Platform([[100.0, -5.0]])

    def test_rejects_non_finite(self):
        with pytest.raises(InvalidPlatformError):
            Platform([[100.0, np.inf]])
        with pytest.raises(InvalidPlatformError):
            Platform([[np.nan, 100.0]])

    def test_rejects_wrong_shape(self):
        with pytest.raises(InvalidPlatformError):
            Platform([100.0, 200.0])
        with pytest.raises(InvalidPlatformError):
            Platform(np.empty((0, 3)))

    def test_names(self):
        p = Platform([[1.0, 2.0]], names=["a", "b"])
        assert p[1].name == "b"
        with pytest.raises(InvalidPlatformError):
            Platform([[1.0, 2.0]], names=["only-one"])

    def test_matrix_is_read_only_copy(self):
        raw = np.array([[1.0, 2.0]])
        p = Platform(raw)
        raw[0, 0] = 99.0
        assert p.time(0, 0) == 1.0
        with pytest.raises(ValueError):
            p.processing_times[0, 0] = 5.0

    def test_type_consistency_enforced(self):
        types = TypeAssignment([0, 0])
        with pytest.raises(InvalidPlatformError):
            Platform([[100.0, 200.0], [150.0, 200.0]], types=types)

    def test_type_consistency_can_be_disabled(self):
        types = TypeAssignment([0, 0])
        p = Platform(
            [[100.0, 200.0], [150.0, 200.0]],
            types=types,
            enforce_type_consistency=False,
        )
        assert p.num_tasks == 2

    def test_type_consistency_ok_when_rows_match(self):
        types = TypeAssignment([0, 1, 0])
        w = [[100.0, 200.0], [50.0, 60.0], [100.0, 200.0]]
        assert Platform(w, types=types).num_tasks == 3


class TestPlatformConstructors:
    def test_homogeneous(self):
        p = Platform.homogeneous(3, 4, 250.0)
        assert p.is_homogeneous()
        assert p.processing_times.shape == (3, 4)
        assert np.all(p.processing_times == 250.0)

    def test_homogeneous_validation(self):
        with pytest.raises(InvalidPlatformError):
            Platform.homogeneous(0, 3, 10.0)
        with pytest.raises(InvalidPlatformError):
            Platform.homogeneous(3, 3, -1.0)

    def test_from_type_times(self):
        types = TypeAssignment([0, 1, 0])
        p = Platform.from_type_times(types, [[100.0, 200.0], [300.0, 400.0]])
        assert p.time(0, 1) == 200.0
        assert p.time(1, 1) == 400.0
        assert p.time(2, 0) == 100.0

    def test_from_type_times_validation(self):
        types = TypeAssignment([0, 1])
        with pytest.raises(InvalidPlatformError):
            Platform.from_type_times(types, [[100.0, 200.0]])  # missing type row
        with pytest.raises(InvalidPlatformError):
            Platform.from_type_times(types, [100.0, 200.0])


class TestPlatformQueries:
    def test_heterogeneity_is_column_std(self):
        w = np.array([[100.0, 500.0], [300.0, 500.0]])
        p = Platform(w)
        het = p.machine_heterogeneity()
        assert het[0] == pytest.approx(np.std([100.0, 300.0]))
        assert het[1] == 0.0

    def test_is_homogeneous_false(self):
        assert not Platform([[1.0, 2.0]]).is_homogeneous()

    def test_slowest_sequential_period_unweighted(self):
        p = Platform([[100.0, 10.0], [200.0, 10.0]])
        assert p.slowest_sequential_period() == 300.0

    def test_slowest_sequential_period_weighted(self):
        p = Platform([[100.0, 10.0], [200.0, 10.0]])
        assert p.slowest_sequential_period(np.array([2.0, 1.0])) == 400.0

    def test_slowest_sequential_period_shape_check(self):
        p = Platform([[100.0, 10.0]])
        with pytest.raises(InvalidPlatformError):
            p.slowest_sequential_period(np.array([1.0, 2.0]))

    def test_restrict_tasks(self):
        p = Platform([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        sub = p.restrict_tasks([0, 2])
        assert sub.num_tasks == 2
        assert sub.time(1, 1) == 6.0
        with pytest.raises(InvalidPlatformError):
            p.restrict_tasks([])

    def test_round_trip_serialization(self):
        p = Platform([[1.0, 2.0], [3.0, 4.0]], names=["x", "y"])
        clone = Platform.from_dict(p.to_dict())
        assert np.array_equal(clone.processing_times, p.processing_times)
        assert clone[0].name == "x"
