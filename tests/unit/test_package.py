"""Package-level sanity tests (public API surface, exceptions, version)."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_reexports(self):
        assert repro.Mapping is not None
        assert repro.ProblemInstance is not None
        assert callable(repro.linear_chain)
        assert callable(repro.evaluate)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.exact
        import repro.experiments
        import repro.generators
        import repro.heuristics
        import repro.simulation

        for module in (
            repro.analysis,
            repro.exact,
            repro.experiments,
            repro.generators,
            repro.heuristics,
            repro.simulation,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in exceptions.__all__:
            exc = getattr(exceptions, name)
            assert issubclass(exc, exceptions.ReproError)

    def test_specific_parents(self):
        assert issubclass(exceptions.MappingRuleViolation, exceptions.InvalidMappingError)
        assert issubclass(exceptions.SolverUnavailableError, exceptions.SolverError)

    def test_catching_base_class(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.SimulationError("boom")

    def test_quickstart_docstring_example(self):
        # The module docstring contains a doctest-style example; run its gist.
        import numpy as np

        from repro import FailureModel, Platform, ProblemInstance, linear_chain
        from repro.heuristics import get_heuristic

        app = linear_chain(6, num_types=2)
        rng = np.random.default_rng(0)
        w = rng.uniform(100, 1000, size=(2, 4))[list(app.types), :]
        f = rng.uniform(0.005, 0.02, size=(6, 4))
        instance = ProblemInstance(app, Platform(w), FailureModel(f))
        result = get_heuristic("H4w").solve(instance)
        assert result.period > 0
