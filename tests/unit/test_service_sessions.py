"""Unit tests for the versioned service API and live replanning sessions."""

from __future__ import annotations

import asyncio
import http.client
import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ServiceOverloadedError
from repro.heuristics import get_heuristic
from repro.heuristics.base import solve_one
from repro.live import LiveConfig, build_replanner, generate_timeline, sub_instance
from repro.service import (
    ServiceClient,
    SessionManager,
    SolveService,
    get_json,
    normalize_event,
    normalize_session_request,
    solve_remote,
)


def run(coro):
    return asyncio.run(coro)


def make_session_payload(**overrides) -> dict:
    payload = {
        "heuristic": "H4ls",
        "application": {"tasks": 10, "types": 3},
        "platform": {"machines": 6},
        "options": {"seed": 0, "repetition": 0},
    }
    for key, value in overrides.items():
        if key in ("tasks", "types"):
            payload["application"][key] = value
        elif key == "machines":
            payload["platform"][key] = value
        elif key in ("seed", "repetition", "ttl_seconds", "deadline_ms"):
            payload["options"][key] = value
        else:
            payload[key] = value
    return payload


def raw_http(url: str, method: str, path: str, payload: dict | None = None):
    """One HTTP exchange exposing status, headers and the JSON body."""
    host, port = url.removeprefix("http://").split(":")
    conn = http.client.HTTPConnection(host, int(port), timeout=30)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


class TestSessionNormalisation:
    def test_accepts_ttl_override(self):
        spec = normalize_session_request(make_session_payload(ttl_seconds=12.5))
        assert spec.ttl_seconds == 12.5
        assert spec.request.heuristic == "H4ls"

    @pytest.mark.parametrize(
        "payload",
        [
            make_session_payload(heuristic="H1"),  # randomized
            make_session_payload(deadline_ms=50),  # per-solve knob
            make_session_payload(ttl_seconds=0),
            make_session_payload(ttl_seconds=-3),
            make_session_payload(ttl_seconds=True),
            make_session_payload(junk=1),  # unknown top-level key
            "not an object",
        ],
    )
    def test_bad_session_payloads_are_rejected(self, payload):
        with pytest.raises(ExperimentError):
            normalize_session_request(payload)

    def test_unknown_top_level_keys_are_listed(self):
        with pytest.raises(ExperimentError, match="surprise"):
            normalize_session_request(make_session_payload(surprise=1))

    def test_event_roundtrip(self):
        assert normalize_event({"kind": "fail", "machine": 2, "time": 1.5}) == (
            "fail",
            2,
            1.5,
        )
        assert normalize_event({"kind": "request", "time": 0}) == ("request", None, 0.0)

    @pytest.mark.parametrize(
        "payload",
        [
            {"kind": "explode", "time": 1.0, "machine": 0},
            {"kind": "fail", "time": 1.0},  # machine missing
            {"kind": "fail", "time": 1.0, "machine": -1},
            {"kind": "fail", "time": 1.0, "machine": True},
            {"kind": "request", "time": 1.0, "machine": 0},
            {"kind": "fail", "machine": 0},  # time missing
            {"kind": "fail", "time": -1.0, "machine": 0},
            {"kind": "fail", "time": True, "machine": 0},
            {"kind": "fail", "time": 1.0, "machine": 0, "junk": 1},
            "not an object",
        ],
    )
    def test_bad_events_are_rejected(self, payload):
        with pytest.raises(ExperimentError):
            normalize_event(payload)


class TestSessionManager:
    def make_session_args(self, **overrides):
        spec = normalize_session_request(make_session_payload(**overrides))
        config = LiveConfig(
            tasks=spec.request.num_tasks,
            types=spec.request.scenario.num_types,
            machines=spec.request.scenario.num_machines,
            heuristic=spec.request.heuristic,
            seed=spec.request.seed,
        )
        return spec, build_replanner(config)

    def test_idle_sessions_expire_on_sweep(self):
        async def scenario():
            manager = SessionManager(ttl=10.0)
            session = manager.add(*self.make_session_args())
            assert manager.sweep(now=session.last_used + 5.0) == 0
            assert manager.sweep(now=session.last_used + 11.0) == 1
            return manager, session

        manager, session = run(scenario())
        assert session.id not in manager
        assert manager.expired == 1
        with pytest.raises(ExperimentError, match="no such session"):
            manager.get(session.id)

    def test_sweep_skips_sessions_with_an_event_mid_flight(self):
        async def scenario():
            manager = SessionManager(ttl=10.0)
            session = manager.add(*self.make_session_args())
            async with session.lock:  # an event is being applied right now
                swept_busy = manager.sweep(now=session.last_used + 100.0)
            swept_idle = manager.sweep(now=session.last_used + 100.0)
            return swept_busy, swept_idle

        swept_busy, swept_idle = run(scenario())
        assert swept_busy == 0  # busy: skipped no matter how old
        assert swept_idle == 1  # idle again: expired

    def test_session_table_is_bounded(self):
        async def scenario():
            manager = SessionManager(ttl=30.0, max_sessions=1)
            manager.add(*self.make_session_args())
            with pytest.raises(ServiceOverloadedError) as excinfo:
                manager.add(*self.make_session_args(seed=1))
            return excinfo.value

        exc = run(scenario())
        assert exc.retry_after_seconds == 30.0

    def test_ttl_override_applies_per_session(self):
        async def scenario():
            manager = SessionManager(ttl=300.0)
            session = manager.add(*self.make_session_args(ttl_seconds=1.0))
            return manager.sweep(now=session.last_used + 2.0)

        assert run(scenario()) == 1

    def test_departed_sessions_keep_their_availability_mass(self):
        async def scenario():
            manager = SessionManager(ttl=10.0)
            spec, replanner = self.make_session_args()
            session = manager.add(spec, replanner)
            manager.note_record(replanner.apply(50.0, "request"))
            manager.close(session.id)
            return manager.stats_payload()

        stats = run(scenario())
        assert stats["active"] == 0
        assert stats["closed"] == 1
        assert stats["availability"] == 1.0
        assert stats["served"] == 1


class TestSessionHTTP:
    def request_in_executor(self, call):
        return asyncio.get_running_loop().run_in_executor(None, call)

    def with_service(self, inner, **service_kwargs):
        async def scenario():
            service = SolveService(port=0, window=0.001, **service_kwargs)
            await service.start()
            try:
                return await inner(service)
            finally:
                await service.stop()

        return run(scenario())

    def test_session_lifecycle_matches_local_replanner(self):
        config = LiveConfig(
            tasks=10, types=3, machines=6, duration=40.0, mtbf=18.0, mttr=6.0,
            arrival_rate=0.15,
        )
        local = build_replanner(config)
        local_records = [local.initial.to_dict()] + [
            local.apply(e.time, e.kind, e.machine).to_dict()
            for e in generate_timeline(config)
        ]

        async def inner(service):
            def talk():
                with ServiceClient(service.url) as client:
                    with client.session(config.session_payload()) as session:
                        records = [
                            {k: v for k, v in session.created.items()
                             if k not in ("session", "ttl_seconds")}
                        ]
                        for event in generate_timeline(config):
                            response = session.event(**event.to_payload())
                            records.append(
                                {k: v for k, v in response.items() if k != "session"}
                            )
                        state = session.state()
                        closed = session.close()
                    return records, state, closed

            return await self.request_in_executor(talk)

        records, state, closed = self.with_service(inner)
        # replan_ms is a latency measurement, not state — everything else
        # must agree bit for bit with the in-process run.
        strip = lambda rec: {k: v for k, v in rec.items() if k != "replan_ms"}
        assert [strip(r) for r in records] == [strip(r) for r in local_records]
        assert state["events"] == len(local_records)
        assert state["feasible"] == local.feasible
        assert closed["closed"] is True
        assert closed["events"] == len(local_records)

    def test_unknown_session_is_a_404_envelope(self):
        async def inner(service):
            return await self.request_in_executor(
                lambda: raw_http(service.url, "GET", "/v1/session/nope")
            )

        status, _, body = self.with_service(inner)
        assert status == 404
        assert body["error"]["code"] == "session_not_found"
        assert "nope" in body["error"]["message"]

    def test_concurrent_events_on_one_session_serialize(self):
        # Two simultaneous failures of assigned machines, posted
        # concurrently: whichever order the lock grants, the final state
        # is the cold solve of the final up-set — a pure function of it.
        payload = make_session_payload(tasks=10, machines=6)

        async def inner(service):
            def create():
                with ServiceClient(service.url) as client:
                    return client.post("/v1/session", payload)

            created = await self.request_in_executor(create)
            mapping = created["mapping"]
            victims = sorted(set(mapping))[:2]

            def post_event(machine):
                def call():
                    with ServiceClient(service.url) as client:
                        return client.post(
                            f"/v1/session/{created['session']}/event",
                            {"kind": "fail", "time": 1.0, "machine": machine},
                        )

                return self.request_in_executor(call)

            first, second = await asyncio.gather(*map(post_event, victims))
            return created, first, second

        created, first, second = self.with_service(inner)
        spec = normalize_session_request(make_session_payload(tasks=10, machines=6))
        instance = spec.request.sample()
        up = np.ones(instance.num_machines, dtype=bool)
        victims = sorted(set(created["mapping"]))[:2]
        up[victims] = False
        sub, cols = sub_instance(instance, up)
        expected = [int(u) for u in cols[solve_one(get_heuristic("H4ls"), sub)]]
        final = first if first["seq"] > second["seq"] else second
        assert {first["seq"], second["seq"]} == {1, 2}
        assert final["mapping"] == expected
        assert final["up_count"] == instance.num_machines - 2

    def test_idle_session_expires_over_http(self):
        async def inner(service):
            def create():
                with ServiceClient(service.url) as client:
                    return client.post("/v1/session", make_session_payload())

            created = await self.request_in_executor(create)
            await asyncio.sleep(0.6)  # ttl 0.2, sweeper interval 0.05
            return await self.request_in_executor(
                lambda: raw_http(
                    service.url, "GET", f"/v1/session/{created['session']}"
                )
            )

        status, _, body = self.with_service(inner, session_ttl=0.2)
        assert status == 404
        assert body["error"]["code"] == "session_not_found"

    def test_session_table_full_is_a_429_envelope(self):
        async def inner(service):
            def create():
                return raw_http(
                    service.url, "POST", "/v1/session", make_session_payload()
                )

            first = await self.request_in_executor(create)
            second = await self.request_in_executor(
                lambda: raw_http(
                    service.url, "POST", "/v1/session",
                    make_session_payload(seed=1),
                )
            )
            return first, second

        first, second = self.with_service(inner, max_sessions=1)
        assert first[0] == 200
        status, headers, body = second
        assert status == 429
        assert body["error"]["code"] == "overloaded"
        assert body["error"]["retry_after_seconds"] >= 1
        assert "Retry-After" in headers

    def test_bad_payloads_get_400_envelopes_listing_unknown_keys(self):
        async def inner(service):
            calls = {
                "solve": lambda: raw_http(
                    service.url, "POST", "/v1/solve",
                    make_session_payload(bogus_key=1),
                ),
                "session": lambda: raw_http(
                    service.url, "POST", "/v1/session",
                    make_session_payload(bogus_key=1),
                ),
            }
            results = {}
            for name, call in calls.items():
                results[name] = await self.request_in_executor(call)
            created = await self.request_in_executor(
                lambda: raw_http(
                    service.url, "POST", "/v1/session", make_session_payload()
                )
            )
            results["event"] = await self.request_in_executor(
                lambda: raw_http(
                    service.url, "POST",
                    f"/v1/session/{created[2]['session']}/event",
                    {"kind": "fail", "time": 1.0, "machine": 0, "bogus_key": 1},
                )
            )
            return results

        results = self.with_service(inner)
        for status, _, body in results.values():
            assert status == 400
            assert body["error"]["code"] == "bad_request"
            assert "bogus_key" in body["error"]["message"]

    def test_randomized_heuristic_session_is_rejected(self):
        async def inner(service):
            return await self.request_in_executor(
                lambda: raw_http(
                    service.url, "POST", "/v1/session",
                    make_session_payload(heuristic="H1"),
                )
            )

        status, _, body = self.with_service(inner)
        assert status == 400
        assert "deterministic" in body["error"]["message"]


class TestVersionedAPI:
    def request_in_executor(self, call):
        return asyncio.get_running_loop().run_in_executor(None, call)

    def with_service(self, inner, **service_kwargs):
        async def scenario():
            service = SolveService(port=0, window=0.001, **service_kwargs)
            await service.start()
            try:
                return await inner(service)
            finally:
                await service.stop()

        return run(scenario())

    def test_v1_and_legacy_routes_answer_identically(self):
        payload = make_session_payload()

        async def inner(service):
            legacy = await self.request_in_executor(
                lambda: raw_http(service.url, "POST", "/solve", payload)
            )
            versioned = await self.request_in_executor(
                lambda: raw_http(service.url, "POST", "/v1/solve", payload)
            )
            return legacy, versioned

        legacy, versioned = self.with_service(inner)
        assert legacy[0] == versioned[0] == 200
        assert legacy[2]["assignment"] == versioned[2]["assignment"]
        assert legacy[2]["key"] == versioned[2]["key"]

    def test_legacy_aliases_carry_the_deprecation_header(self):
        async def inner(service):
            results = {}
            for path in ("/stats", "/healthz", "/v1/stats", "/v1/healthz"):
                results[path] = await self.request_in_executor(
                    lambda p=path: raw_http(service.url, "GET", p)
                )
            return results

        results = self.with_service(inner)
        for path in ("/stats", "/healthz"):
            assert results[path][1].get("Deprecation") == "true", path
        for path in ("/v1/stats", "/v1/healthz"):
            assert "Deprecation" not in results[path][1], path

    def test_unknown_routes_get_404_envelopes(self):
        async def inner(service):
            return (
                await self.request_in_executor(
                    lambda: raw_http(service.url, "GET", "/nope")
                ),
                await self.request_in_executor(
                    lambda: raw_http(service.url, "GET", "/v1/nope")
                ),
                await self.request_in_executor(
                    lambda: raw_http(service.url, "PUT", "/v1/solve")
                ),
            )

        for status, _, body in self.with_service(inner):
            assert status == 404
            assert body["error"]["code"] == "not_found"
            assert "no such endpoint" in body["error"]["message"]

    def test_invalid_json_is_a_400_envelope(self):
        async def inner(service):
            def call():
                host, port = service.url.removeprefix("http://").split(":")
                conn = http.client.HTTPConnection(host, int(port), timeout=30)
                try:
                    conn.request(
                        "POST", "/v1/solve", body=b"{nope",
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    return response.status, json.loads(response.read())
                finally:
                    conn.close()

            return await self.request_in_executor(call)

        status, body = self.with_service(inner)
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "not valid JSON" in body["error"]["message"]

    def test_stats_exposes_the_sessions_section(self):
        async def inner(service):
            def talk():
                with ServiceClient(service.url) as client:
                    with client.session(make_session_payload()) as session:
                        session.event("fail", 1.0, 0)
                    return client.stats()

            return await self.request_in_executor(talk)

        stats = self.with_service(inner)
        sessions = stats["sessions"]
        assert sessions["created"] == 1
        assert sessions["closed"] == 1
        assert sessions["events"] == 2  # initial solve + one failure
        assert sessions["replans"]["cold"] >= 1
        assert 0.0 <= sessions["availability"] <= 1.0

    def test_legacy_client_helpers_still_work(self):
        payload = make_session_payload()

        async def inner(service):
            url = service.url
            response = await self.request_in_executor(
                lambda: solve_remote(url, payload)
            )
            health = await self.request_in_executor(
                lambda: get_json(url + "/healthz")
            )
            return response, health

        response, health = self.with_service(inner)
        assert response["period"] > 0
        assert health["status"] == "ok"


class TestServiceClient:
    def test_rejects_non_http_urls(self):
        with pytest.raises(ExperimentError, match="bad service URL"):
            ServiceClient("ftp://example:21")

    def test_bare_host_port_is_accepted(self):
        client = ServiceClient("127.0.0.1:8000")
        assert client.base_url == "http://127.0.0.1:8000"

    def test_keep_alive_reuses_one_connection(self):
        async def scenario():
            service = SolveService(port=0, window=0.001)
            await service.start()
            try:
                def talk():
                    with ServiceClient(service.url) as client:
                        client.healthz()
                        first = client._conn
                        client.stats()
                        second = client._conn
                        return first is not None and first is second

                return await asyncio.get_running_loop().run_in_executor(None, talk)
            finally:
                await service.stop()

        assert run(scenario())

    def test_retries_429_until_the_budget_runs_out(self):
        class Flaky(ServiceClient):
            def __init__(self, failures):
                super().__init__("http://127.0.0.1:1", retries=5)
                self.failures = failures
                self.calls = 0

            def _roundtrip(self, method, path, payload):
                self.calls += 1
                if self.calls <= self.failures:
                    raise ServiceOverloadedError(
                        "busy", retry_after_seconds=0.001
                    )
                return {"ok": True}

        recovered = Flaky(failures=2)
        assert recovered.get("/v1/stats") == {"ok": True}
        assert recovered.calls == 3

        exhausted = Flaky(failures=100)
        exhausted.retries = 2
        with pytest.raises(ServiceOverloadedError):
            exhausted.get("/v1/stats")
        assert exhausted.calls == 3  # initial try + 2 retries

    def test_zero_retries_surfaces_the_429_immediately(self):
        class AlwaysBusy(ServiceClient):
            def _roundtrip(self, method, path, payload):
                raise ServiceOverloadedError("busy", retry_after_seconds=0.001)

        client = AlwaysBusy("http://127.0.0.1:1", retries=0)
        with pytest.raises(ServiceOverloadedError):
            client.get("/v1/stats")

    def test_unreachable_server_is_a_clean_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=0.2)
        with pytest.raises(ExperimentError, match="cannot reach"):
            client.healthz()
