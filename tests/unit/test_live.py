"""Unit tests for the live replanning subsystem (timeline + replanner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.heuristics import get_heuristic
from repro.heuristics.base import solve_one
from repro.live import (
    EVENT_KINDS,
    LiveConfig,
    LiveEvent,
    Replanner,
    build_replanner,
    compare_reports,
    generate_timeline,
    run_timeline,
    sub_instance,
)

#: Deterministic heuristics the bit-for-bit contract is checked over.
DETERMINISTIC_HEURISTICS = ("H2", "H3", "H4", "H4w", "H4f", "H4ls")


def make_config(**overrides) -> LiveConfig:
    defaults = dict(
        tasks=10,
        types=3,
        machines=6,
        heuristic="H4ls",
        seed=0,
        duration=60.0,
        mtbf=25.0,
        mttr=8.0,
        arrival_rate=0.2,
    )
    defaults.update(overrides)
    return LiveConfig(**defaults)


class TestTimeline:
    def test_same_config_same_timeline(self):
        config = make_config()
        assert generate_timeline(config) == generate_timeline(config)

    def test_events_are_time_ordered_with_deterministic_ties(self):
        events = generate_timeline(make_config(seed=3))
        keys = [event.sort_key() for event in events[:-1]]
        assert keys == sorted(keys)

    def test_ends_with_a_probe_at_the_horizon(self):
        config = make_config()
        last = generate_timeline(config)[-1]
        assert last.kind == "request"
        assert last.time == config.duration
        assert last.machine is None

    def test_adding_machines_does_not_perturb_existing_streams(self):
        # Named per-machine streams: machine u's phases are identical
        # whether the platform has 6 or 7 machines.
        small = generate_timeline(make_config(machines=6))
        large = generate_timeline(make_config(machines=7))
        pick = lambda events, u: [e for e in events if e.machine == u]
        for machine in range(6):
            assert pick(small, machine) == pick(large, machine)

    def test_zero_arrival_rate_yields_only_platform_events(self):
        events = generate_timeline(make_config(arrival_rate=0.0))
        assert all(event.kind != "request" for event in events[:-1])

    def test_different_seeds_differ(self):
        assert generate_timeline(make_config(seed=0)) != generate_timeline(
            make_config(seed=1)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(time=-1.0, kind="fail", machine=0),
            dict(time=0.0, kind="explode", machine=0),
            dict(time=0.0, kind="fail"),  # fail needs a machine
            dict(time=0.0, kind="request", machine=2),  # request takes none
        ],
    )
    def test_bad_events_are_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            LiveEvent(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(duration=0.0),
            dict(mtbf=0.0),
            dict(mttr=-1.0),
            dict(arrival_rate=-0.1),
        ],
    )
    def test_bad_configs_are_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            make_config(**kwargs)

    def test_event_kinds_constant_matches_priorities(self):
        assert EVENT_KINDS == ("fail", "recover", "request")


class TestReplannerTiers:
    def make(self, **overrides) -> Replanner:
        return build_replanner(make_config(**overrides))

    def test_initial_solve_matches_direct_heuristic(self):
        replanner = self.make()
        expected = solve_one(get_heuristic("H4ls"), replanner.instance)
        assert replanner.initial.via == "cold"
        assert replanner.initial.mapping == tuple(int(u) for u in expected)
        assert replanner.feasible

    def test_randomized_heuristics_are_rejected(self):
        replanner = self.make()
        with pytest.raises(ExperimentError, match="deterministic heuristic"):
            Replanner(replanner.instance, "H1")

    def test_failing_an_unassigned_machine_warm_starts(self):
        # Plenty of machines for few tasks, so some stay unassigned.
        replanner = self.make(tasks=6, types=2, machines=10)
        assigned = set(replanner.initial.mapping)
        spare = next(
            u for u in range(replanner.instance.num_machines) if u not in assigned
        )
        record = replanner.apply(1.0, "fail", spare)
        assert record.via == "warm"
        assert record.feasible

    def test_failing_an_assigned_machine_cold_solves_the_subplatform(self):
        replanner = self.make()
        victim = replanner.initial.mapping[0]
        record = replanner.apply(1.0, "fail", victim)
        assert record.via == "cold"
        sub, cols = sub_instance(replanner.instance, replanner.up)
        expected = cols[solve_one(get_heuristic("H4ls"), sub)]
        assert record.mapping == tuple(int(u) for u in expected)
        assert victim not in record.mapping

    def test_recovery_replays_the_pre_failure_plan_bit_for_bit(self):
        replanner = self.make()
        before = replanner.initial.mapping
        victim = before[0]
        replanner.apply(1.0, "fail", victim)
        record = replanner.apply(2.0, "recover", victim)
        assert record.via == "cache"
        assert record.mapping == before

    def test_too_few_up_machines_is_infeasible_then_recovers(self):
        config = make_config(tasks=6, types=3, machines=4, arrival_rate=0.0)
        replanner = build_replanner(config)
        replanner.apply(1.0, "fail", 0)  # 3 machines up: still feasible
        record = replanner.apply(2.0, "fail", 1)  # 2 up < 3 types
        assert record.via == "infeasible"
        assert not record.feasible
        assert record.mapping is None and record.period is None
        # Recovering back to the {1,2,3} up-set replays its cached plan.
        back = replanner.apply(5.0, "recover", 1)
        assert back.via == "cache"
        assert back.feasible

    def test_availability_integrates_event_time_only(self):
        config = make_config(tasks=6, types=3, machines=4, arrival_rate=0.0)
        replanner = build_replanner(config)
        replanner.apply(10.0, "fail", 0)  # 3 up: still feasible
        replanner.apply(20.0, "fail", 1)  # 2 up < 3 types: infeasible from t=20
        replanner.apply(50.0, "recover", 1)  # feasible again from t=50
        availability = replanner.finish(100.0)
        assert availability == pytest.approx(0.70)
        assert replanner.available_seconds == pytest.approx(70.0)
        assert replanner.unavailable_seconds == pytest.approx(30.0)

    def test_requests_observe_serve_and_miss(self):
        config = make_config(tasks=6, types=3, machines=3, arrival_rate=0.0)
        replanner = build_replanner(config)
        served = replanner.apply(1.0, "request")
        assert served.via == "serve"
        assert served.period == replanner.period
        replanner.apply(2.0, "fail", 0)
        replanner.apply(3.0, "fail", 1)
        missed = replanner.apply(4.0, "request")
        assert missed.via == "miss"
        assert missed.period is None
        assert replanner.counters.served == 1
        assert replanner.counters.missed == 1

    def test_redundant_transitions_are_rejected(self):
        replanner = self.make()
        replanner.apply(1.0, "fail", 0)
        with pytest.raises(ExperimentError, match="already down"):
            replanner.apply(2.0, "fail", 0)
        with pytest.raises(ExperimentError, match="already up"):
            replanner.apply(2.0, "recover", 1)

    def test_time_must_not_regress(self):
        replanner = self.make()
        replanner.apply(5.0, "fail", 0)
        with pytest.raises(ExperimentError, match="non-decreasing"):
            replanner.apply(4.0, "recover", 0)

    @pytest.mark.parametrize(
        "kind,machine",
        [("explode", 0), ("fail", None), ("fail", 99), ("request", 0)],
    )
    def test_bad_events_are_rejected(self, kind, machine):
        with pytest.raises(ExperimentError):
            self.make().apply(1.0, kind, machine)

    def test_warm_tier_mapping_only_uses_up_machines(self):
        replanner = self.make()
        for record in self.run_all(replanner):
            if record.mapping is not None:
                assert all(replanner.instance.num_machines > u >= 0 for u in record.mapping)

    @staticmethod
    def run_all(replanner, config=None):
        config = config or make_config()
        return [
            replanner.apply(event.time, event.kind, event.machine)
            for event in generate_timeline(config)
        ]


class TestWarmColdEquivalence:
    @pytest.mark.parametrize("heuristic", DETERMINISTIC_HEURISTICS)
    @pytest.mark.parametrize(
        "shape",
        [
            dict(tasks=10, types=3, machines=6),
            dict(tasks=14, types=4, machines=8, mtbf=18.0, mttr=10.0),
        ],
    )
    def test_warm_equals_cold_re_solve_bit_for_bit(self, heuristic, shape):
        config = make_config(heuristic=heuristic, **shape)
        compare_reports(
            run_timeline(config, warm=False), run_timeline(config, warm=True)
        )

    def test_mapping_states_match_elementwise(self):
        # compare_reports is itself under test here: check the raw
        # mappings agree without going through it.
        config = make_config(seed=7)
        warm = run_timeline(config, warm=True)
        cold = run_timeline(config, warm=False)
        assert [r["mapping"] for r in warm.records] == [
            r["mapping"] for r in cold.records
        ]
        assert warm.availability == cold.availability

    def test_compare_reports_flags_divergence(self):
        config = make_config()
        warm = run_timeline(config, warm=True)
        cold = run_timeline(config, warm=False)
        cold.records[-1]["availability"] += 0.5
        with pytest.raises(ExperimentError, match="differs"):
            compare_reports(cold, warm)

    def test_reports_carry_counters_and_latency(self):
        report = run_timeline(make_config())
        assert report.counters["served"] + report.counters["missed"] > 0
        assert set(report.latency_ms) == {"warm", "cold", "cache"}
        payload = report.to_dict()
        assert payload["events"] == len(payload["records"])
        assert payload["mode"] == "warm"


class TestSubInstance:
    def test_columns_map_back_to_full_indices(self):
        replanner = build_replanner(make_config())
        up = np.ones(replanner.instance.num_machines, dtype=bool)
        up[1] = up[4] = False
        sub, cols = sub_instance(replanner.instance, up)
        assert list(cols) == [0, 2, 3, 5]
        assert sub.num_machines == 4
        np.testing.assert_array_equal(
            sub.processing_times, replanner.instance.processing_times[:, cols]
        )
        np.testing.assert_array_equal(
            sub.failure_rates, replanner.instance.failure_rates[:, cols]
        )

    def test_no_up_machines_is_an_error(self):
        replanner = build_replanner(make_config())
        with pytest.raises(ExperimentError, match="no up machines"):
            sub_instance(
                replanner.instance,
                np.zeros(replanner.instance.num_machines, dtype=bool),
            )
