"""Unit tests for the random instance generators (repro.generators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import TypeAssignment
from repro.exceptions import ExperimentError, InvalidApplicationError, InvalidPlatformError
from repro.generators import (
    HIGH_FAILURE_F_RANGE,
    PAPER_F_RANGE,
    PAPER_W_RANGE,
    ScenarioConfig,
    random_chain_application,
    random_failure_model,
    random_failure_rates,
    random_in_tree_application,
    random_platform,
    random_processing_times,
    sample_instance,
)
from repro.simulation.rng import RandomStreamFactory


class TestPlatformGenerators:
    def test_paper_ranges(self):
        assert PAPER_W_RANGE == (100.0, 1000.0)
        assert PAPER_F_RANGE == (0.005, 0.02)
        assert HIGH_FAILURE_F_RANGE == (0.0, 0.10)

    def test_processing_times_within_range_and_type_consistent(self, rng):
        types = TypeAssignment([0, 1, 0, 2, 1])
        w = random_processing_times(types, 4, rng)
        assert w.shape == (5, 4)
        assert np.all(w >= 100.0) and np.all(w <= 1000.0)
        assert np.allclose(w[0], w[2])  # same type -> same row
        assert np.allclose(w[1], w[4])

    def test_processing_times_validation(self, rng):
        types = TypeAssignment([0, 1])
        with pytest.raises(InvalidPlatformError):
            random_processing_times(types, 0, rng)
        with pytest.raises(InvalidPlatformError):
            random_processing_times(types, 2, rng, low=-1.0, high=10.0)

    def test_random_platform_is_valid(self, rng):
        types = TypeAssignment([0, 1, 1])
        platform = random_platform(types, 3, rng)
        assert platform.num_tasks == 3
        assert platform.num_machines == 3

    def test_failure_rates_within_range(self, rng):
        f = random_failure_rates(6, 4, rng)
        assert f.shape == (6, 4)
        assert np.all(f >= 0.005) and np.all(f <= 0.02)

    def test_failure_rates_task_dependent(self, rng):
        f = random_failure_rates(5, 3, rng, task_dependent=True)
        assert np.allclose(f, f[:, [0]])

    def test_failure_rates_validation(self, rng):
        with pytest.raises(InvalidPlatformError):
            random_failure_rates(0, 2, rng)
        with pytest.raises(InvalidPlatformError):
            random_failure_rates(2, 2, rng, low=0.5, high=1.5)

    def test_random_failure_model(self, rng):
        model = random_failure_model(4, 3, rng, low=0.0, high=0.1)
        assert model.num_tasks == 4
        assert model.rates.max() <= 0.1

    def test_reproducibility(self):
        types = TypeAssignment([0, 1, 0])
        w1 = random_processing_times(types, 3, np.random.default_rng(9))
        w2 = random_processing_times(types, 3, np.random.default_rng(9))
        assert np.array_equal(w1, w2)


class TestApplicationGenerators:
    def test_random_chain_uses_all_types(self, rng):
        app = random_chain_application(12, 4, rng)
        assert app.is_chain()
        assert app.num_types == 4
        assert app.types.used_types() == [0, 1, 2, 3]

    def test_random_chain_reproducible(self):
        a = random_chain_application(10, 3, np.random.default_rng(5))
        b = random_chain_application(10, 3, np.random.default_rng(5))
        assert list(a.types) == list(b.types)

    def test_random_in_tree(self, rng):
        tree = random_in_tree_application(3, (1, 3), 2, rng, shared_tail_length=2)
        assert not tree.is_chain()
        assert len(tree.sources()) == 3
        assert len(tree.sinks()) == 1

    def test_random_in_tree_validation(self, rng):
        with pytest.raises(InvalidApplicationError):
            random_in_tree_application(0, (1, 2), 2, rng)
        with pytest.raises(InvalidApplicationError):
            random_in_tree_application(2, (3, 1), 2, rng)


class TestScenarioConfig:
    def _config(self, **overrides) -> ScenarioConfig:
        defaults = dict(
            name="test",
            num_machines=6,
            num_types=3,
            sweep="tasks",
            sweep_values=(6, 10, 14),
            repetitions=2,
        )
        defaults.update(overrides)
        return ScenarioConfig(**defaults)

    def test_dimensions_for_task_sweep(self):
        config = self._config()
        assert config.dimensions_at(10) == (10, 3, 6)

    def test_dimensions_for_type_sweep(self):
        config = self._config(sweep="types", num_tasks=20, sweep_values=(2, 4))
        assert config.dimensions_at(4) == (20, 4, 6)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            self._config(sweep="bogus")
        with pytest.raises(ExperimentError):
            self._config(sweep_values=())
        with pytest.raises(ExperimentError):
            self._config(repetitions=0)
        with pytest.raises(ExperimentError):
            ScenarioConfig(
                name="x",
                num_machines=4,
                num_types=2,
                sweep="types",
                sweep_values=(2,),
            )

    def test_scaled_reduces_points_and_reps(self):
        config = self._config(sweep_values=tuple(range(10, 101, 10)), repetitions=30)
        scaled = config.scaled(repetitions=3, max_points=4)
        assert scaled.repetitions == 3
        assert len(scaled.sweep_values) == 4
        assert scaled.sweep_values[0] == 10
        assert scaled.sweep_values[-1] == 100

    def test_scaled_noop(self):
        config = self._config()
        assert config.scaled().sweep_values == config.sweep_values

    def test_sample_instance_dimensions(self):
        config = self._config()
        streams = RandomStreamFactory(0)
        inst = sample_instance(config, 10, 0, streams)
        assert inst.num_tasks == 10
        assert inst.num_types == 3
        assert inst.num_machines == 6
        assert inst.application.is_chain()

    def test_sample_instance_reproducible(self):
        config = self._config()
        a = sample_instance(config, 10, 1, RandomStreamFactory(3))
        b = sample_instance(config, 10, 1, RandomStreamFactory(3))
        assert np.array_equal(a.processing_times, b.processing_times)
        assert np.array_equal(a.failure_rates, b.failure_rates)
        assert list(a.application.types) == list(b.application.types)

    def test_sample_instance_varies_with_repetition(self):
        config = self._config()
        streams = RandomStreamFactory(3)
        a = sample_instance(config, 10, 0, streams)
        b = sample_instance(config, 10, 1, streams)
        assert not np.array_equal(a.processing_times, b.processing_times)

    def test_sample_instance_infeasible_dimensions(self):
        config = self._config(num_types=5, sweep_values=(3,))
        with pytest.raises(ExperimentError):
            sample_instance(config, 3, 0, RandomStreamFactory(0))
        big_types = self._config(num_machines=2, num_types=3, sweep_values=(10,))
        with pytest.raises(ExperimentError):
            sample_instance(big_types, 10, 0, RandomStreamFactory(0))

    def test_task_dependent_failures_flag(self):
        config = self._config(task_dependent_failures=True)
        inst = sample_instance(config, 10, 0, RandomStreamFactory(1))
        assert inst.failures.is_task_dependent()
