"""Unit tests for repro.analysis (stats, normalisation, tables)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    NormalizationReport,
    Series,
    format_table,
    normalize_series,
    overall_factor,
    paired_ratio,
    series_table,
    series_to_csv,
    summarize,
)


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert s.ci_low < 2.5 < s.ci_high

    def test_single_sample(self):
        s = summarize([5.0])
        assert s.count == 1
        assert s.mean == 5.0
        assert s.ci_low == s.ci_high == 5.0

    def test_ignores_non_finite(self):
        s = summarize([1.0, float("nan"), float("inf"), 3.0])
        assert s.count == 2
        assert s.mean == pytest.approx(2.0)

    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"count", "mean", "std", "min", "max", "ci_low", "ci_high"}


class TestPairedRatio:
    def test_mean_of_ratios(self):
        s = paired_ratio([2.0, 6.0], [1.0, 3.0])
        assert s.mean == pytest.approx(2.0)

    def test_skips_invalid_pairs(self):
        s = paired_ratio([2.0, 6.0, 4.0], [1.0, float("nan"), 0.0])
        assert s.count == 1
        assert s.mean == pytest.approx(2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_ratio([1.0], [1.0, 2.0])


class TestSeries:
    def test_add_and_point(self):
        s = Series("H4w")
        s.add(10, 100.0)
        s.add(10, 120.0)
        s.add(20, 300.0)
        assert s.x_values == [10, 20]
        assert s.point(10).mean == pytest.approx(110.0)
        assert s.point(20).count == 1
        assert s.means() == [pytest.approx(110.0), pytest.approx(300.0)]

    def test_extend(self):
        s = Series("H2")
        s.extend(5, [1.0, 2.0, 3.0])
        assert s.point(5).count == 3

    def test_as_rows(self):
        s = Series("H2")
        s.add(5, 2.0)
        rows = s.as_rows()
        assert rows[0]["x"] == 5
        assert rows[0]["label"] == "H2"
        assert rows[0]["mean"] == 2.0

    def test_missing_point_is_empty_summary(self):
        assert Series("x").point(99).count == 0


class TestNormalization:
    def _series(self) -> tuple[Series, Series]:
        heuristic = Series("H4w")
        reference = Series("MIP")
        for x in (5, 10):
            for rep in range(3):
                base = 100.0 * (1 + rep)
                reference.add(x, base)
                heuristic.add(x, base * 1.5)
        return heuristic, reference

    def test_normalize_series_ratio(self):
        heuristic, reference = self._series()
        normalized = normalize_series(heuristic, reference)
        assert normalized.label == "H4w/MIP"
        for x in (5, 10):
            assert normalized.point(x).mean == pytest.approx(1.5)

    def test_normalize_skips_nan_reference(self):
        heuristic, reference = self._series()
        reference.add(15, float("nan"))
        heuristic.add(15, 100.0)
        normalized = normalize_series(heuristic, reference)
        assert normalized.point(15).count == 0

    def test_overall_factor(self):
        heuristic, reference = self._series()
        assert overall_factor(heuristic, reference).mean == pytest.approx(1.5)

    def test_normalization_report(self):
        heuristic, reference = self._series()
        other = Series("H1")
        for x in (5, 10):
            for rep in range(3):
                other.add(x, 100.0 * (1 + rep) * 2.5)
        report = NormalizationReport.from_series(
            {"H4w": heuristic, "H1": other, "MIP": reference}, "MIP"
        )
        assert report.factor("H4w") == pytest.approx(1.5)
        assert report.factor("H1") == pytest.approx(2.5)
        rows = report.as_rows()
        assert rows[0]["label"] == "H4w"  # sorted by increasing factor
        assert rows[-1]["label"] == "H1"


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]
        assert "-" in lines[1]
        assert "30" in lines[3]

    def test_series_table_contains_all_labels(self):
        s1, s2 = Series("H2"), Series("H4w")
        s1.add(10, 100.0)
        s2.add(10, 90.0)
        s2.add(20, 95.0)
        text = series_table({"H2": s1, "H4w": s2}, x_name="n")
        assert "H2" in text and "H4w" in text
        assert "nan" in text  # H2 has no value at n=20

    def test_series_to_csv_structure(self):
        s = Series("H2")
        s.add(10, 100.0)
        s.add(20, 200.0)
        csv_text = series_to_csv({"H2": s}, x_name="n")
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("n,H2_mean")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "10"

    def test_series_to_csv_without_spread(self):
        s = Series("H2")
        s.add(10, 100.0)
        csv_text = series_to_csv({"H2": s}, include_spread=False)
        assert csv_text.splitlines()[0] == "n,H2_mean"
