"""Unit tests for the from-scratch assignment solvers (repro.exact.hungarian)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.exact.hungarian import (
    assignment_cost,
    bottleneck_assignment,
    min_cost_assignment,
)
from repro.exceptions import InfeasibleProblemError, SolverError


class TestMinCostAssignment:
    def test_trivial_identity(self):
        cost = np.array([[1.0, 10.0], [10.0, 1.0]])
        cols = min_cost_assignment(cost)
        assert cols.tolist() == [0, 1]
        assert assignment_cost(cost, cols) == pytest.approx(2.0)

    def test_forces_conflict_resolution(self):
        # Both rows prefer column 0; the optimum sacrifices one of them.
        cost = np.array([[1.0, 5.0], [2.0, 100.0]])
        cols = min_cost_assignment(cost)
        assert sorted(cols.tolist()) == [0, 1]
        assert assignment_cost(cost, cols) == pytest.approx(7.0)

    def test_rectangular_matrix(self):
        cost = np.array([[9.0, 1.0, 9.0], [1.0, 9.0, 9.0]])
        cols = min_cost_assignment(cost)
        assert cols.tolist() == [1, 0]

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_scipy_on_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        n, m = int(rng.integers(2, 9)), int(rng.integers(9, 14))
        cost = rng.uniform(0, 100, size=(n, m))
        ours = min_cost_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert len(set(ours.tolist())) == n  # injective
        assert assignment_cost(cost, ours) == pytest.approx(cost[rows, cols].sum())

    def test_square_large_random(self):
        rng = np.random.default_rng(123)
        cost = rng.uniform(0, 1, size=(40, 40))
        ours = min_cost_assignment(cost)
        rows, cols = linear_sum_assignment(cost)
        assert assignment_cost(cost, ours) == pytest.approx(cost[rows, cols].sum())

    def test_more_rows_than_columns_rejected(self):
        with pytest.raises(InfeasibleProblemError):
            min_cost_assignment(np.ones((3, 2)))

    def test_rejects_bad_input(self):
        with pytest.raises(SolverError):
            min_cost_assignment(np.array([1.0, 2.0]))
        with pytest.raises(SolverError):
            min_cost_assignment(np.array([[1.0, np.inf]]))


class TestBottleneckAssignment:
    def test_minimises_the_maximum(self):
        cost = np.array([[10.0, 2.0], [3.0, 10.0]])
        cols = bottleneck_assignment(cost)
        assert cols.tolist() == [1, 0]
        assert cost[[0, 1], cols].max() == pytest.approx(3.0)

    def test_differs_from_min_sum_when_appropriate(self):
        # Min-sum picks (0->0, 1->1) with costs (1, 9): total 10, max 9.
        # Bottleneck prefers (0->1, 1->0) with costs (5, 4): max 5.
        cost = np.array([[1.0, 5.0], [4.0, 9.0]])
        sum_cols = min_cost_assignment(cost)
        bottleneck_cols = bottleneck_assignment(cost)
        assert cost[[0, 1], sum_cols].sum() <= cost[[0, 1], bottleneck_cols].sum()
        assert cost[[0, 1], bottleneck_cols].max() <= cost[[0, 1], sum_cols].max()
        assert cost[[0, 1], bottleneck_cols].max() == pytest.approx(5.0)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce_on_small_random(self, seed):
        from itertools import permutations

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        m = n + int(rng.integers(0, 3))
        cost = rng.uniform(0, 100, size=(n, m))
        cols = bottleneck_assignment(cost)
        value = cost[np.arange(n), cols].max()
        best = min(
            max(cost[i, perm[i]] for i in range(n)) for perm in permutations(range(m), n)
        )
        assert value == pytest.approx(best)

    def test_rectangular(self):
        cost = np.array([[5.0, 1.0, 9.0]])
        assert bottleneck_assignment(cost).tolist() == [1]

    def test_rejects_bad_input(self):
        with pytest.raises(InfeasibleProblemError):
            bottleneck_assignment(np.ones((3, 2)))
        with pytest.raises(SolverError):
            bottleneck_assignment(np.array([[np.nan, 1.0]]))
