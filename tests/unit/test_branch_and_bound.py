"""Unit tests for the pure-Python exact branch-and-bound solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FailureModel, Platform, ProblemInstance
from repro.core.application import Application
from repro.core.types import TypeAssignment
from repro.exact.branch_and_bound import solve_specialized_branch_and_bound
from repro.exact.bruteforce import bruteforce_optimal
from repro.exact.milp import solve_specialized_milp
from repro.exceptions import InfeasibleProblemError
from tests.helpers import make_random_instance


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce(self, seed):
        inst = make_random_instance(5, 2, 3, seed=seed)
        bb = solve_specialized_branch_and_bound(inst)
        brute = bruteforce_optimal(inst, "specialized")
        assert bb.proved_optimal
        assert bb.period == pytest.approx(brute.period, rel=1e-9)

    def test_matches_milp_on_larger_instance(self):
        inst = make_random_instance(9, 3, 4, seed=21)
        bb = solve_specialized_branch_and_bound(inst)
        milp = solve_specialized_milp(inst)
        assert bb.proved_optimal and milp.is_optimal
        assert bb.period == pytest.approx(milp.period, rel=1e-6)

    def test_mapping_is_valid_specialized(self):
        inst = make_random_instance(8, 3, 4, seed=22)
        bb = solve_specialized_branch_and_bound(inst)
        bb.mapping.validate(inst, "specialized")
        assert bb.nodes_explored > 0
        assert bb.solve_time >= 0.0

    def test_node_limit_returns_incumbent(self):
        inst = make_random_instance(12, 3, 5, seed=23)
        limited = solve_specialized_branch_and_bound(inst, node_limit=5)
        assert not limited.proved_optimal
        # The incumbent comes from the greedy heuristics, so it is valid.
        limited.mapping.validate(inst, "specialized")

    def test_never_worse_than_heuristic_incumbent(self):
        from repro.heuristics import get_heuristic

        inst = make_random_instance(10, 2, 4, seed=24)
        bb = solve_specialized_branch_and_bound(inst)
        h4w = get_heuristic("H4w").solve(inst)
        h4 = get_heuristic("H4").solve(inst)
        assert bb.period <= min(h4w.period, h4.period) + 1e-9

    def test_infeasible_instance_rejected(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        inst = ProblemInstance(
            app, Platform.homogeneous(3, 2, 10.0), FailureModel.failure_free(3, 2)
        )
        with pytest.raises(InfeasibleProblemError):
            solve_specialized_branch_and_bound(inst)

    def test_single_task(self):
        app = Application.chain(TypeAssignment([0]))
        w = np.array([[200.0, 100.0]])
        f = np.array([[0.0, 0.5]])
        inst = ProblemInstance(app, Platform(w), FailureModel(f))
        bb = solve_specialized_branch_and_bound(inst)
        # Machine 1 costs 100 / 0.5 = 200 expected; machine 0 costs 200: tie,
        # so the optimum period is 200 either way.
        assert bb.period == pytest.approx(200.0)
