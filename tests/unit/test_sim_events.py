"""Unit tests for the discrete-event calendar (repro.simulation.events)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue


class TestEventQueue:
    def test_empty_queue_behaviour(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        with pytest.raises(SimulationError):
            q.pop()
        with pytest.raises(SimulationError):
            q.peek_time()

    def test_orders_by_time(self):
        q = EventQueue()
        q.schedule(5.0, EventKind.MACHINE_COMPLETION, "late")
        q.schedule(1.0, EventKind.MACHINE_COMPLETION, "early")
        q.schedule(3.0, EventKind.MACHINE_COMPLETION, "middle")
        assert [q.pop().payload for _ in range(3)] == ["early", "middle", "late"]

    def test_ties_broken_by_kind_priority(self):
        q = EventQueue()
        q.schedule(2.0, EventKind.SOURCE_FEED, "feed")
        q.schedule(2.0, EventKind.MACHINE_COMPLETION, "completion")
        # Completions drain before arrivals/feeds at the same timestamp.
        assert q.pop().payload == "completion"
        assert q.pop().payload == "feed"

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.CONTROL, "first")
        q.schedule(1.0, EventKind.CONTROL, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.schedule(4.0, EventKind.CONTROL)
        assert q.peek_time() == 4.0
        assert len(q) == 1

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(Event(time=-1.0, kind=EventKind.CONTROL))

    def test_clear(self):
        q = EventQueue()
        q.schedule(1.0, EventKind.CONTROL)
        q.schedule(2.0, EventKind.CONTROL)
        q.clear()
        assert len(q) == 0

    def test_schedule_returns_event(self):
        q = EventQueue()
        event = q.schedule(7.0, EventKind.PRODUCT_ARRIVAL, payload=(1, 2))
        assert event.time == 7.0
        assert event.kind is EventKind.PRODUCT_ARRIVAL
        assert event.payload == (1, 2)

    def test_len_tracks_push_pop(self):
        q = EventQueue()
        for t in range(10):
            q.schedule(float(t), EventKind.CONTROL)
        assert len(q) == 10
        q.pop()
        assert len(q) == 9
