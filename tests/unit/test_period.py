"""Unit tests for repro.core.period (the analytic objective of Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Application,
    FailureModel,
    Mapping,
    Platform,
    ProblemInstance,
    TypeAssignment,
    critical_machines,
    evaluate,
    expected_products,
    in_tree,
    machine_periods,
    period,
    required_inputs,
    throughput,
)
from repro.exceptions import InvalidMappingError


class TestExpectedProducts:
    def test_failure_free_chain_is_all_ones(self, failure_free_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        x = expected_products(failure_free_instance, mapping)
        assert np.allclose(x, 1.0)

    def test_chain_recursion_matches_hand_computation(self):
        # Chain of 3 tasks, single machine, f = [0.5, 0.0, 0.2] on machine 0.
        app = Application.chain(TypeAssignment([0, 1, 2]))
        platform = Platform.homogeneous(3, 1, 100.0)
        failures = FailureModel([[0.5], [0.0], [0.2]])
        inst = ProblemInstance(app, platform, failures)
        x = expected_products(inst, Mapping([0, 0, 0], 1))
        # x3 = 1/(1-0.2) = 1.25; x2 = x3; x1 = x2 / 0.5 = 2.5
        assert x[2] == pytest.approx(1.25)
        assert x[1] == pytest.approx(1.25)
        assert x[0] == pytest.approx(2.5)

    def test_x_monotone_along_chain(self, small_instance):
        # Along a chain x_i >= x_{i+1} because every F factor is >= 1.
        mapping = Mapping([0, 1, 0, 2], 3)
        x = expected_products(small_instance, mapping)
        assert x[0] >= x[1] >= x[2] >= x[3] >= 1.0

    def test_join_propagates_to_both_branches(self):
        # Two single-task branches joining into a final task.
        tree = in_tree([1, 1], num_types=1, shared_tail_length=1)
        platform = Platform.homogeneous(3, 3, 100.0)
        failures = FailureModel([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5], [0.2, 0.2, 0.2]])
        inst = ProblemInstance(tree, platform, failures)
        x = expected_products(inst, Mapping([0, 1, 2], 3))
        # Sink (task 2): x = 1.25; both branch tasks need 1.25 deliveries.
        assert x[2] == pytest.approx(1.25)
        assert x[0] == pytest.approx(1.25)  # failure-free branch
        assert x[1] == pytest.approx(2.5)  # failing branch

    def test_dimension_mismatch_raises(self, small_instance):
        with pytest.raises(InvalidMappingError):
            expected_products(small_instance, Mapping([0, 1], 3))


class TestPeriodAndThroughput:
    def test_failure_free_period_is_load(self, failure_free_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        periods = machine_periods(failure_free_instance, mapping)
        # Machine 0 runs tasks 0 and 2 (100 each); machine 1 runs 1 and 3 (150 each).
        assert periods[0] == pytest.approx(200.0)
        assert periods[1] == pytest.approx(300.0)
        assert periods[2] == 0.0
        assert period(failure_free_instance, mapping) == pytest.approx(300.0)
        assert throughput(failure_free_instance, mapping) == pytest.approx(1.0 / 300.0)

    def test_period_equals_max_machine_period(self, small_instance):
        mapping = Mapping([0, 1, 2, 1], 3)
        periods = machine_periods(small_instance, mapping)
        assert period(small_instance, mapping) == pytest.approx(periods.max())

    def test_failures_increase_period(self, small_instance, failure_free_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        assert period(small_instance, mapping) > period(failure_free_instance, mapping)

    def test_critical_machines(self, failure_free_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        assert critical_machines(failure_free_instance, mapping) == [1]

    def test_critical_machines_ties(self):
        app = Application.chain(TypeAssignment([0, 1]))
        platform = Platform.homogeneous(2, 2, 100.0)
        inst = ProblemInstance(app, platform, FailureModel.failure_free(2, 2))
        assert critical_machines(inst, Mapping([0, 1], 2)) == [0, 1]

    def test_single_machine_period_is_total_work(self):
        app = Application.chain(TypeAssignment([0, 1, 2]))
        platform = Platform([[100.0], [200.0], [300.0]])
        inst = ProblemInstance(app, platform, FailureModel.failure_free(3, 1))
        assert period(inst, Mapping([0, 0, 0], 1)) == pytest.approx(600.0)


class TestRequiredInputs:
    def test_failure_free_requires_exactly_target(self, failure_free_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        inputs = required_inputs(failure_free_instance, mapping, products_out=10)
        assert inputs == {0: pytest.approx(10.0)}

    def test_failures_inflate_inputs(self, small_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        inputs = required_inputs(small_instance, mapping, products_out=100)
        assert inputs[0] > 100.0

    def test_negative_target_rejected(self, small_instance):
        with pytest.raises(InvalidMappingError):
            required_inputs(small_instance, Mapping([0, 1, 0, 1], 3), products_out=-1)

    def test_tree_has_one_entry_per_source(self):
        tree = in_tree([1, 1], num_types=1)
        platform = Platform.homogeneous(3, 3, 10.0)
        inst = ProblemInstance(tree, platform, FailureModel.failure_free(3, 3))
        inputs = required_inputs(inst, Mapping([0, 1, 2], 3), products_out=5)
        assert set(inputs) == set(tree.sources())
        assert all(v == pytest.approx(5.0) for v in inputs.values())


class TestEvaluate:
    def test_evaluation_consistency(self, small_instance):
        mapping = Mapping([0, 1, 0, 1], 3)
        result = evaluate(small_instance, mapping)
        assert result.period == pytest.approx(period(small_instance, mapping))
        assert result.throughput == pytest.approx(1.0 / result.period)
        assert len(result.machine_periods) == 3
        assert len(result.expected_products) == 4
        assert result.mapping == mapping
        assert max(result.machine_periods) == pytest.approx(result.period)
        assert set(result.critical_machines) == set(
            critical_machines(small_instance, mapping)
        )

    def test_as_dict_round_trips_values(self, small_instance):
        result = evaluate(small_instance, Mapping([0, 1, 0, 1], 3))
        data = result.as_dict()
        assert data["period"] == pytest.approx(result.period)
        assert data["assignment"] == [0, 1, 0, 1]
        assert len(data["machine_periods"]) == 3
