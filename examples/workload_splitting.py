#!/usr/bin/env python3
"""Future-work extension: dividing a task's workload across machines.

The paper's conclusion suggests that letting several machines share the
instances of a single task could improve the throughput further.  The
:mod:`repro.extensions.splitting` module implements that idea: for a fixed
dedication of machines to task types, the optimal division of every task's
product stream is a linear program.

This example:

1. builds a paper-style random instance;
2. computes the best unsplit specialized mapping (heuristic H4w and the
   exact branch-and-bound optimum);
3. re-optimises the H4w mapping by splitting workloads over the machines
   it dedicated, and reports the improvement;
4. compares everything against the fractional lower bound, which no
   specialized mapping (split or not) can beat.

Run with::

    python examples/workload_splitting.py
"""

from __future__ import annotations

import numpy as np

from repro import FailureModel, Platform, ProblemInstance
from repro.exact import solve_specialized_branch_and_bound
from repro.extensions import split_specialized_mapping, splitting_lower_bound
from repro.generators import (
    random_chain_application,
    random_failure_rates,
    random_processing_times,
)
from repro.heuristics import get_heuristic


def build_instance(seed: int = 5) -> ProblemInstance:
    rng = np.random.default_rng(seed)
    app = random_chain_application(14, 3, rng)
    w = random_processing_times(app.types, 6, rng)
    f = random_failure_rates(14, 6, rng, low=0.01, high=0.05)
    return ProblemInstance(app, Platform(w, types=app.types), FailureModel(f))


def main() -> None:
    instance = build_instance()
    print(f"Instance: {instance}")
    print()

    h4w = get_heuristic("H4w").solve(instance)
    exact = solve_specialized_branch_and_bound(instance)
    split = split_specialized_mapping(instance, h4w.mapping)
    bound = splitting_lower_bound(instance)

    print(f"{'fractional lower bound':32s} {bound:8.1f} ms   (no specialized mapping can beat this)")
    print(f"{'exact unsplit optimum (B&B)':32s} {exact.period:8.1f} ms")
    print(f"{'H4w unsplit mapping':32s} {h4w.period:8.1f} ms")
    print(f"{'H4w mapping, workload split':32s} {split.period:8.1f} ms   "
          f"({split.improvement:+.1%} vs unsplit H4w)")
    print()

    divided = split.fractional.tasks_split()
    if divided:
        print("Tasks whose stream is divided across several machines:")
        shares = split.fractional.shares()
        for task in divided:
            parts = ", ".join(
                f"cell {machine}: {shares[task, machine]:.0%}"
                for machine in range(instance.num_machines)
                if shares[task, machine] > 1e-6
            )
            print(f"  T{task + 1}: {parts}")
    else:
        print("The optimal split keeps every task on a single machine for this draw.")

    utilisation = split.fractional.machine_utilisation(instance)
    print()
    print("Machine utilisation under the split mapping:")
    for machine, value in enumerate(utilisation):
        if value > 1e-9:
            print(f"  cell {machine}: {value:6.1%}")
    print()
    print("Reading: splitting recovers part of the gap between the heuristic and")
    print("the fractional bound without changing which machine handles which type —")
    print("exactly the improvement the paper's conclusion anticipates.")


if __name__ == "__main__":
    main()
