#!/usr/bin/env python3
"""Domain example: planning a micro-watch assembly line.

The scenario mirrors the paper's motivation: a micro-factory assembles a
watch mechanism from micro-metric parts.  The process plan is an *in-tree*:
two sub-assemblies (the gear train and the escapement) are built in
parallel branches and then merged, adjusted and inspected.  Cells are
robotic stations; gripping failures (electrostatic adhesion!) lose parts,
and the loss probability depends both on the delicacy of the operation and
on the station performing it.

The example shows how to:

* model an in-tree application with typed tasks and named operations;
* build a platform from per-type cell timings;
* choose a specialized mapping with the best heuristic and compare it with
  the exact branch-and-bound optimum;
* size the raw-part supply for a production order;
* verify the plan with the stochastic simulator, including the join.

Run with::

    python examples/watch_assembly_line.py
"""

from __future__ import annotations

import numpy as np

from repro import FailureModel, Platform, ProblemInstance, evaluate, required_inputs
from repro.core import Application, TypeAssignment
from repro.exact import solve_specialized_branch_and_bound
from repro.heuristics import get_heuristic
from repro.simulation import SimulationTrace, TraceEventType, simulate_mapping

# Operation types.
PICK, PRESS, GLUE, INSPECT = 0, 1, 2, 3
TYPE_NAMES = {PICK: "pick&place", PRESS: "press-fit", GLUE: "micro-gluing", INSPECT: "inspection"}


def build_application() -> Application:
    """Two assembly branches joining into a common finishing tail.

    Branch A (gear train):   T1 pick -> T2 press -> T3 inspect
    Branch B (escapement):   T4 pick -> T5 glue  -> T6 inspect
    Tail (after the join):   T7 press (merge) -> T8 glue -> T9 inspect
    """
    types = TypeAssignment(
        [PICK, PRESS, INSPECT, PICK, GLUE, INSPECT, PRESS, GLUE, INSPECT],
        num_types=4,
    )
    names = [
        "pick gear blank",
        "press gear train",
        "inspect gear train",
        "pick escapement",
        "glue pallet fork",
        "inspect escapement",
        "merge & press",
        "glue balance spring",
        "final inspection",
    ]
    edges = [(0, 1), (1, 2), (3, 4), (4, 5), (2, 6), (5, 6), (6, 7), (7, 8)]
    return Application(types, edges, names)


def build_instance() -> ProblemInstance:
    app = build_application()
    rng = np.random.default_rng(7)

    # Six robotic cells; per-operation-type timings in ms.  Cells 0-1 are
    # fast manipulators, 2-3 are general purpose, 4-5 are slow but steady.
    per_type_times = np.array(
        [
            #  cell0   cell1   cell2   cell3   cell4   cell5
            [150.0, 170.0, 260.0, 240.0, 420.0, 430.0],  # pick&place
            [300.0, 280.0, 350.0, 380.0, 520.0, 500.0],  # press-fit
            [450.0, 430.0, 500.0, 480.0, 600.0, 620.0],  # micro-gluing
            [200.0, 210.0, 230.0, 220.0, 260.0, 250.0],  # inspection
        ]
    )
    platform = Platform.from_type_times(app.types, per_type_times)

    # Failure rates: delicate gluing and gripping fail more, especially on
    # the fast cells (stronger electrostatic effects at higher speed).
    base_by_type = {PICK: 0.03, PRESS: 0.01, GLUE: 0.05, INSPECT: 0.005}
    cell_factor = np.array([1.6, 1.5, 1.0, 1.0, 0.6, 0.6])
    rates = np.zeros((app.num_tasks, 6))
    for task in app.tasks:
        rates[task.index, :] = base_by_type[task.type_index] * cell_factor
    rates += rng.uniform(0.0, 0.005, size=rates.shape)
    failures = FailureModel(rates)

    return ProblemInstance(app, platform, failures, name="watch-assembly")


def main() -> None:
    instance = build_instance()
    app = instance.application
    print("Process plan (in-tree):")
    for task in app.tasks:
        succ = app.successor(task.index)
        arrow = f" -> T{succ + 1}" if succ is not None else "  (final product)"
        print(f"  T{task.index + 1}: {task.name:22s} [{TYPE_NAMES[task.type_index]}]{arrow}")
    print()

    # Heuristic plan vs exact optimum.
    heuristic = get_heuristic("H4w").solve(instance)
    exact = solve_specialized_branch_and_bound(instance)
    print(f"H4w period:   {heuristic.period:8.1f} ms")
    print(f"Exact period: {exact.period:8.1f} ms "
          f"(branch-and-bound, {exact.nodes_explored} nodes)")
    print(f"H4w is at a factor {heuristic.period / exact.period:.3f} from the optimum.")
    print()

    chosen = exact.mapping
    evaluation = evaluate(instance, chosen)
    print("Chosen (optimal) mapping:")
    for machine, tasks in sorted(chosen.machine_loads().items()):
        labels = ", ".join(f"T{t + 1}" for t in tasks)
        print(f"  cell {machine}: {labels}   (period {evaluation.machine_periods[machine]:.1f} ms)")
    print(f"  application period: {evaluation.period:.1f} ms "
          f"-> {evaluation.throughput * 3.6e6:.0f} mechanisms/hour")
    print()

    # Size the raw-part supply for an order of 5 000 mechanisms.
    order = 5000
    supply = required_inputs(instance, chosen, products_out=order)
    print(f"Raw parts to supply for an order of {order} mechanisms:")
    for source, count in sorted(supply.items()):
        print(f"  {app.tasks[source].name:22s}: {count:8.1f} parts "
              f"({count / order - 1:+.1%} overage for losses)")
    print()

    # Stochastic check, tracing the join behaviour.
    trace = SimulationTrace(max_records=200_000)
    metrics = simulate_mapping(
        instance, chosen, 1000, rng=np.random.default_rng(11), trace=trace
    )
    print("Stochastic verification (1000 finished mechanisms):")
    print(f"  simulated period : {metrics.empirical_period:8.1f} ms "
          f"(analytic {evaluation.period:.1f} ms)")
    print(f"  parts lost       : {int(metrics.losses.sum())}")
    lost_after_merge = sum(
        1 for record in trace.filter(TraceEventType.PRODUCT_LOST) if record.task >= 6
    )
    print(f"  losses after the merge (most expensive): {lost_after_merge}")


if __name__ == "__main__":
    main()
