#!/usr/bin/env python3
"""Quickstart: build an instance, map it with every heuristic, check against the optimum.

This example walks through the full public API in a few dozen lines:

1. describe a linear-chain application with typed tasks;
2. describe the platform (processing times) and the failure model;
3. run the paper's six heuristics and compare their periods;
4. solve the exact MIP to see how far the heuristics are from the optimum;
5. validate the best mapping with the stochastic micro-factory simulator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import FailureModel, Platform, ProblemInstance, evaluate, linear_chain, required_inputs
from repro.exact import solve_specialized_milp
from repro.heuristics import PAPER_HEURISTICS, get_heuristic
from repro.simulation import simulate_mapping


def build_instance() -> ProblemInstance:
    """A 10-task micro-assembly chain with 3 operation types on 5 cells."""
    # Types along the chain: pick-and-place (0), gluing (1), inspection (2).
    app = linear_chain(10, types=[0, 1, 0, 2, 1, 0, 2, 1, 0, 2])

    rng = np.random.default_rng(2024)
    # Processing times depend on the operation type and the cell (ms).
    per_type_times = rng.uniform(100.0, 1000.0, size=(3, 5))
    platform = Platform.from_type_times(app.types, per_type_times)

    # Transient failure rates per (task, cell): between 0.5% and 2%.
    failures = FailureModel(rng.uniform(0.005, 0.02, size=(10, 5)))
    return ProblemInstance(app, platform, failures, name="quickstart")


def main() -> None:
    instance = build_instance()
    print(f"Instance: {instance}")
    print()

    # 1. Run every heuristic of the paper.
    results = {}
    for name in PAPER_HEURISTICS:
        heuristic = get_heuristic(name)
        results[name] = heuristic.solve(instance, np.random.default_rng(0))
    print("Heuristic periods (lower is better):")
    for name, result in sorted(results.items(), key=lambda kv: kv[1].period):
        print(f"  {name:4s}  period = {result.period:8.1f} ms   "
              f"throughput = {result.throughput * 1000:6.3f} products/s")
    print()

    # 2. Exact optimum via the Section-6.1 MIP (small instance, fast).
    milp = solve_specialized_milp(instance)
    print(f"MIP optimum: period = {milp.period:.1f} ms ({milp.status}, "
          f"{milp.solve_time:.2f}s)")
    best_name, best = min(results.items(), key=lambda kv: kv[1].period)
    print(f"Best heuristic ({best_name}) is at a factor "
          f"{best.period / milp.period:.2f} from the optimum.")
    print()

    # 3. Inspect the best mapping.
    evaluation = evaluate(instance, best.mapping)
    print(f"Best mapping ({best_name}): {list(best.mapping)}")
    print(f"  critical machine(s): {list(evaluation.critical_machines)}")
    inputs = required_inputs(instance, best.mapping, products_out=1000)
    for source, count in inputs.items():
        print(f"  raw products to feed at task T{source + 1} for 1000 finished: "
              f"{count:.1f}")
    print()

    # 4. Validate with the stochastic simulator.
    metrics = simulate_mapping(instance, best.mapping, 500, rng=np.random.default_rng(1))
    print("Stochastic simulation of the best mapping (500 finished products):")
    print(f"  analytic period : {best.period:8.1f} ms")
    print(f"  simulated period: {metrics.empirical_period:8.1f} ms")
    print(f"  products lost   : {int(metrics.losses.sum())}")


if __name__ == "__main__":
    main()
