#!/usr/bin/env python3
"""Reproduce any figure of the paper's evaluation from the library API.

The command-line equivalent is ``microrepro run <figure>``; this example
shows how to do the same programmatically, tweak the scale, and export the
series as CSV for external plotting.

Run with::

    python examples/reproduce_figure.py            # quick, scaled-down fig10
    python examples/reproduce_figure.py fig5       # another figure
    python examples/reproduce_figure.py fig10 full # the paper's full sweep (slow)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import FIGURES, figure_report, run_figure


def main(argv: list[str]) -> int:
    figure_id = argv[1] if len(argv) > 1 else "fig10"
    full_scale = len(argv) > 2 and argv[2] == "full"
    if figure_id not in FIGURES:
        print(f"unknown figure {figure_id!r}; choose from {', '.join(FIGURES)}")
        return 2

    spec = FIGURES[figure_id]
    print(f"Reproducing {figure_id}: {spec.scenario.description}")
    print(f"Paper's expected shape: {spec.expected_shape}")
    print()

    if full_scale:
        result = run_figure(figure_id, seed=0)
    else:
        # A quick look: 3 repetitions per point, 4 points along the x axis.
        result = run_figure(figure_id, seed=0, repetitions=3, max_points=4)

    print(figure_report(result))

    out_path = Path(f"{figure_id}_series.csv")
    out_path.write_text(result.to_csv())
    print(f"Series written to {out_path} "
          f"({result.elapsed_seconds:.1f}s, seed={result.seed}).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
