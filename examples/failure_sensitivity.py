#!/usr/bin/env python3
"""Sensitivity study: how failure rates change the right mapping strategy.

The paper's headline conclusion is that, in the usual regime (failure
rates of a few percent), speed matters more than reliability — H4w, which
ignores failures entirely when choosing machines, wins.  Under heavy
failure rates (Figure 8, up to 10%) the picture changes and the
binary-search heuristic H2 copes best.

This example sweeps a *failure-rate scale factor* on a fixed platform and
prints, for every scale, the period achieved by H2, H4, H4w and H4f plus
which heuristic wins — reproducing the crossover the paper describes.

Run with::

    python examples/failure_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro import FailureModel, Platform, ProblemInstance
from repro.generators import random_chain_application, random_processing_times
from repro.heuristics import get_heuristic

HEURISTICS = ("H2", "H3", "H4", "H4w", "H4f")
SCALES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
BASE_RANGE = (0.005, 0.02)  # the paper's default failure-rate range


def build_base(seed: int = 3):
    """Fixed application/platform; failures are rescaled per sweep point."""
    rng = np.random.default_rng(seed)
    app = random_chain_application(40, 5, rng)
    w = random_processing_times(app.types, 10, rng)
    base_f = rng.uniform(BASE_RANGE[0], BASE_RANGE[1], size=(40, 10))
    return app, w, base_f


def main() -> None:
    app, w, base_f = build_base()
    platform = Platform(w, types=app.types)

    print("Failure-rate sensitivity on a 40-task, 5-type, 10-machine line")
    print(f"(base failure rates in [{BASE_RANGE[0]:.1%}, {BASE_RANGE[1]:.1%}], scaled per row)")
    print()
    header = "scale   max f   " + "".join(f"{name:>10s}" for name in HEURISTICS) + "   winner"
    print(header)
    print("-" * len(header))

    for scale in SCALES:
        rates = np.clip(base_f * scale, 0.0, 0.95)
        instance = ProblemInstance(app, platform, FailureModel(rates))
        periods = {}
        for name in HEURISTICS:
            result = get_heuristic(name).solve(instance, np.random.default_rng(0))
            periods[name] = result.period
        winner = min(periods, key=periods.get)
        row = f"{scale:5.2f}  {rates.max():6.1%}  "
        row += "".join(f"{periods[name]:10.0f}" for name in HEURISTICS)
        row += f"   {winner}"
        print(row)

    print()
    print("Reading: at small failure rates the speed-only H4w and the failure-aware")
    print("H4 pick identical machines — reliability is a second-order effect, the")
    print("paper's main conclusion.  As failures grow the two diverge (H4 pulls")
    print("ahead of H4w) and the gap to the failure-blind H4f explodes; H2's global")
    print("bisection copes best with heavy failure rates, as in Figure 8.")


if __name__ == "__main__":
    main()
