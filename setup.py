"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file only
exists so that ``pip install -e .`` keeps working on minimal offline
environments where the ``wheel`` package (needed for PEP 660 editable
installs) is unavailable and pip falls back to the legacy
``setup.py develop`` path.
"""

from setuptools import setup

setup()
